package experiments

import (
	"fmt"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/core"
	"eyeballas/internal/parallel"
)

// MultiScale evaluates the §5 future-work refinement implemented in
// core.MultiScaleFootprint: combining several bandwidths should recover
// more of the published ground truth than the fixed 40 km analysis
// without collapsing to the unreliability of the plain 10 km analysis.
type MultiScale struct {
	NASes int

	// Mean per-AS recall (% of published PoPs matched) and precision
	// (% of discovered PoPs matched) for the three strategies.
	Plain40Recall, Plain40Precision       float64
	Plain10Recall, Plain10Precision       float64
	MultiScaleRecall, MultiScalePrecision float64
	// Mean discovered PoPs per AS for each strategy.
	Plain40PoPs, Plain10PoPs, MultiScalePoPs float64
}

// RunMultiScale executes the comparison over the validation ASes.
func RunMultiScale(env *Env) (*MultiScale, error) {
	var asns []astopo.ASN
	for _, asn := range env.Reference.ASNs() {
		if env.Dataset.AS(asn) != nil {
			asns = append(asns, asn)
		}
	}
	if len(asns) == 0 {
		return nil, fmt.Errorf("experiments: no validation ASes")
	}
	type row struct {
		rec40, prec40, rec10, prec10, recMS, precMS float64
		n40, n10, nMS                               int
	}
	rows := make([]row, len(asns))
	err := parallel.ForEach(env.ctx(), 0, asns, func(i int, asn astopo.ASN) error {
		rec := env.Dataset.AS(asn)
		ref := env.Reference.Locations(asn)

		fp40, err := core.EstimateFootprint(env.World.Gazetteer, rec.Samples, core.Options{BandwidthKm: 40})
		if err != nil {
			return err
		}
		fp10, err := core.EstimateFootprint(env.World.Gazetteer, rec.Samples, core.Options{BandwidthKm: 10})
		if err != nil {
			return err
		}
		ms, err := core.MultiScaleFootprint(env.World.Gazetteer, rec.Samples, core.MultiScaleOptions{})
		if err != nil {
			return err
		}
		m40 := core.MatchPoPs(fp40.PoPs, ref, core.MatchRadiusKm)
		m10 := core.MatchPoPs(fp10.PoPs, ref, core.MatchRadiusKm)
		mMS := core.MatchPoPs(core.MultiScalePoPs(ms), ref, core.MatchRadiusKm)
		rows[i] = row{
			rec40: m40.RefMatchedFrac(), prec40: m40.DiscMatchedFrac(), n40: m40.NDiscovered,
			rec10: m10.RefMatchedFrac(), prec10: m10.DiscMatchedFrac(), n10: m10.NDiscovered,
			recMS: mMS.RefMatchedFrac(), precMS: mMS.DiscMatchedFrac(), nMS: mMS.NDiscovered,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &MultiScale{NASes: len(asns)}
	n := float64(len(asns))
	for _, r := range rows {
		out.Plain40Recall += 100 * r.rec40 / n
		out.Plain40Precision += 100 * r.prec40 / n
		out.Plain10Recall += 100 * r.rec10 / n
		out.Plain10Precision += 100 * r.prec10 / n
		out.MultiScaleRecall += 100 * r.recMS / n
		out.MultiScalePrecision += 100 * r.precMS / n
		out.Plain40PoPs += float64(r.n40) / n
		out.Plain10PoPs += float64(r.n10) / n
		out.MultiScalePoPs += float64(r.nMS) / n
	}
	return out, nil
}

// Render prints the three-strategy comparison.
func (m *MultiScale) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-scale PoP refinement (§5 future work; %d validation ASes)\n", m.NASes)
	fmt.Fprintf(&b, "  %-22s %10s %10s %10s\n", "strategy", "PoPs/AS", "recall", "precision")
	fmt.Fprintf(&b, "  %-22s %10.2f %9.1f%% %9.1f%%\n", "fixed 40 km", m.Plain40PoPs, m.Plain40Recall, m.Plain40Precision)
	fmt.Fprintf(&b, "  %-22s %10.2f %9.1f%% %9.1f%%\n", "fixed 10 km", m.Plain10PoPs, m.Plain10Recall, m.Plain10Precision)
	fmt.Fprintf(&b, "  %-22s %10.2f %9.1f%% %9.1f%%\n", "multi-scale 10-80 km", m.MultiScalePoPs, m.MultiScaleRecall, m.MultiScalePrecision)
	return b.String()
}
