package experiments

import (
	"fmt"
	"strings"
	"sync"

	"eyeballas/internal/astopo"
	"eyeballas/internal/core"
	"eyeballas/internal/rng"
)

// PeerGeo tests the paper's §1 motivation quantitatively: peering
// contracts demand geographic overlap, so AS pairs that actually peer
// should overlap geographically far more than random co-regional pairs.
// Both sides are measured from footprints inferred by the §3–§4 method —
// the experiment is exactly the application the paper envisions for its
// technique.
type PeerGeo struct {
	PeerPairs    int
	ControlPairs int

	// Mean measured-footprint overlap for peering pairs vs the random
	// same-region control.
	PeerShared    float64
	ControlShared float64
	PeerJaccard   float64
	ControlJacc   float64
	// Fraction of pairs with at least one overlapping PoP city.
	PeerAnyOverlap    float64
	ControlAnyOverlap float64
}

// footprintCache lazily computes and memoizes per-AS footprints.
type footprintCache struct {
	env *Env
	mu  sync.Mutex
	m   map[astopo.ASN][]core.PoP
}

func newFootprintCache(env *Env) *footprintCache {
	return &footprintCache{env: env, m: make(map[astopo.ASN][]core.PoP)}
}

func (c *footprintCache) get(asn astopo.ASN) ([]core.PoP, error) {
	c.mu.Lock()
	pops, ok := c.m[asn]
	c.mu.Unlock()
	if ok {
		return pops, nil
	}
	rec := c.env.Dataset.AS(asn)
	if rec == nil {
		return nil, nil
	}
	fp, err := core.EstimateFootprint(c.env.World.Gazetteer, rec.Samples, core.Options{})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.m[asn] = fp.PoPs
	c.mu.Unlock()
	return fp.PoPs, nil
}

// RunPeerGeo executes the study.
func RunPeerGeo(env *Env) (*PeerGeo, error) {
	cache := newFootprintCache(env)
	inDataset := func(a astopo.ASN) bool { return env.Dataset.AS(a) != nil }

	// Peering pairs with both sides in the target dataset.
	type pair struct{ a, b astopo.ASN }
	var peers []pair
	seen := map[pair]bool{}
	for _, p := range env.World.Peerings() {
		if !inDataset(p.A) || !inDataset(p.B) {
			continue
		}
		key := pair{p.A, p.B}
		if !seen[key] {
			seen[key] = true
			peers = append(peers, key)
		}
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("experiments: no peering pairs inside the target dataset")
	}

	// Control: random same-region pairs that do NOT peer.
	src := rng.New(env.Seed).Split("peergeo")
	recs := env.Dataset.Records()
	isPeer := func(a, b astopo.ASN) bool {
		if a > b {
			a, b = b, a
		}
		return seen[pair{a, b}]
	}
	var control []pair
	for tries := 0; len(control) < len(peers) && tries < 50*len(peers); tries++ {
		ra := recs[src.Intn(len(recs))]
		rb := recs[src.Intn(len(recs))]
		if ra.ASN == rb.ASN || ra.Region != rb.Region || isPeer(ra.ASN, rb.ASN) {
			continue
		}
		control = append(control, pair{ra.ASN, rb.ASN})
	}
	if len(control) == 0 {
		return nil, fmt.Errorf("experiments: could not sample control pairs")
	}

	score := func(pairs []pair) (shared, jacc, anyOverlap float64, n int, err error) {
		for _, p := range pairs {
			fa, err := cache.get(p.a)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			fb, err := cache.get(p.b)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			if fa == nil || fb == nil {
				continue
			}
			o := core.FootprintOverlap(fa, fb, core.MatchRadiusKm)
			shared += float64(o.Shared)
			jacc += o.Jaccard
			if o.Shared > 0 {
				anyOverlap++
			}
			n++
		}
		if n > 0 {
			shared /= float64(n)
			jacc /= float64(n)
			anyOverlap /= float64(n)
		}
		return shared, jacc, anyOverlap, n, nil
	}

	out := &PeerGeo{}
	var err error
	out.PeerShared, out.PeerJaccard, out.PeerAnyOverlap, out.PeerPairs, err = score(peers)
	if err != nil {
		return nil, err
	}
	out.ControlShared, out.ControlJacc, out.ControlAnyOverlap, out.ControlPairs, err = score(control)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Render prints the peering-vs-control comparison.
func (p *PeerGeo) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Peering geography (§1 motivation; %d peering pairs vs %d same-region control pairs)\n",
		p.PeerPairs, p.ControlPairs)
	fmt.Fprintf(&b, "  %-22s %14s %10s %14s\n", "pair set", "shared PoPs", "Jaccard", "any overlap")
	fmt.Fprintf(&b, "  %-22s %14.2f %10.3f %13.0f%%\n", "peering", p.PeerShared, p.PeerJaccard, 100*p.PeerAnyOverlap)
	fmt.Fprintf(&b, "  %-22s %14.2f %10.3f %13.0f%%\n", "random same-region", p.ControlShared, p.ControlJacc, 100*p.ControlAnyOverlap)
	return b.String()
}
