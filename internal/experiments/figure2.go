package experiments

import (
	"fmt"
	"sort"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/core"
	"eyeballas/internal/parallel"
	"eyeballas/internal/stats"
)

// Figure2 reproduces the paper's §5 validation against published PoP
// lists: for every AS present in both the target dataset and the
// reference dataset, the discovered PoPs are matched against the
// published entries at several bandwidths.
//
// Figure 2(a) is the CDF over ASes of the percentage of published
// (ground-truth) PoPs the technique matched; Figure 2(b) is the CDF of
// the percentage of discovered PoPs that match a published PoP.
type Figure2 struct {
	Bandwidths []float64
	ASNs       []astopo.ASN

	// Per-bandwidth, per-AS matched percentages (same order as ASNs).
	RefMatchedPct  map[float64][]float64 // Figure 2(a) sample set
	DiscMatchedPct map[float64][]float64 // Figure 2(b) sample set

	// §5 scalar statistics.
	MeanDiscovered   map[float64]float64 // mean discovered PoPs/AS per bandwidth
	PerfectMatchFrac map[float64]float64 // fraction of ASes with 100% in 2(b)
	MeanReference    float64             // mean published-list length
}

// Figure2Bandwidths are the paper's three curves.
var Figure2Bandwidths = []float64{10, 40, 80}

// RunFigure2 executes the validation.
func RunFigure2(env *Env, bandwidths []float64) (*Figure2, error) {
	if len(bandwidths) == 0 {
		bandwidths = Figure2Bandwidths
	}
	f := &Figure2{
		Bandwidths:       bandwidths,
		RefMatchedPct:    make(map[float64][]float64),
		DiscMatchedPct:   make(map[float64][]float64),
		MeanDiscovered:   make(map[float64]float64),
		PerfectMatchFrac: make(map[float64]float64),
	}
	for _, asn := range env.Reference.ASNs() {
		if env.Dataset.AS(asn) != nil {
			f.ASNs = append(f.ASNs, asn)
		}
	}
	sort.Slice(f.ASNs, func(i, j int) bool { return f.ASNs[i] < f.ASNs[j] })
	if len(f.ASNs) == 0 {
		return nil, fmt.Errorf("experiments: no AS is in both the target and reference datasets")
	}

	refTotal := 0
	for _, asn := range f.ASNs {
		refTotal += len(env.Reference.Lists[asn])
	}
	f.MeanReference = float64(refTotal) / float64(len(f.ASNs))

	for _, bw := range bandwidths {
		matches := make([]core.MatchResult, len(f.ASNs))
		err := parallel.ForEach(env.ctx(), 0, f.ASNs, func(i int, asn astopo.ASN) error {
			rec := env.Dataset.AS(asn)
			fp, err := core.EstimateFootprint(env.World.Gazetteer, rec.Samples, core.Options{BandwidthKm: bw})
			if err != nil {
				return fmt.Errorf("experiments: AS %d bw %.0f: %w", asn, bw, err)
			}
			matches[i] = core.MatchPoPs(fp.PoPs, env.Reference.Locations(asn), core.MatchRadiusKm)
			return nil
		})
		if err != nil {
			return nil, err
		}
		totalDisc := 0
		perfect := 0
		for _, m := range matches {
			f.RefMatchedPct[bw] = append(f.RefMatchedPct[bw], 100*m.RefMatchedFrac())
			f.DiscMatchedPct[bw] = append(f.DiscMatchedPct[bw], 100*m.DiscMatchedFrac())
			totalDisc += m.NDiscovered
			if m.NDiscovered > 0 && m.DiscMatched == m.NDiscovered {
				perfect++
			}
		}
		f.MeanDiscovered[bw] = float64(totalDisc) / float64(len(f.ASNs))
		f.PerfectMatchFrac[bw] = float64(perfect) / float64(len(f.ASNs))
	}
	return f, nil
}

// Render prints both panels as CDF tables plus ASCII plots, with the §5
// scalar statistics.
func (f *Figure2) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: validation against published PoP lists (%d ASes, mean list %.1f entries)\n",
		len(f.ASNs), f.MeanReference)
	fmt.Fprintf(&b, "\n%-14s", "bandwidth")
	for _, bw := range f.Bandwidths {
		fmt.Fprintf(&b, "%10.0fkm", bw)
	}
	fmt.Fprintf(&b, "\n%-14s", "mean PoPs/AS")
	for _, bw := range f.Bandwidths {
		fmt.Fprintf(&b, "%12.2f", f.MeanDiscovered[bw])
	}
	fmt.Fprintf(&b, "\n%-14s", "perfect-match")
	for _, bw := range f.Bandwidths {
		fmt.Fprintf(&b, "%11.0f%%", 100*f.PerfectMatchFrac[bw])
	}
	b.WriteString("\n")

	b.WriteString("\n(a) CDF of % ground-truth PoPs matched\n")
	b.WriteString(renderCDFPanel(f.Bandwidths, f.RefMatchedPct))
	b.WriteString("\n(b) CDF of % discovered PoPs matched\n")
	b.WriteString(renderCDFPanel(f.Bandwidths, f.DiscMatchedPct))
	return b.String()
}

func renderCDFPanel(bandwidths []float64, data map[float64][]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "matched%")
	probe := []float64{0, 20, 40, 60, 80, 99.9}
	for _, p := range probe {
		fmt.Fprintf(&b, "%8.0f", p)
	}
	b.WriteString("\n")
	series := map[rune][][2]float64{}
	marks := []rune{'1', '4', '8'}
	for i, bw := range bandwidths {
		cdf := stats.NewCDF(data[bw])
		fmt.Fprintf(&b, "bw=%-6.0f", bw)
		for _, p := range probe {
			fmt.Fprintf(&b, "%7.0f%%", 100*cdf.At(p))
		}
		b.WriteString("\n")
		if i < len(marks) {
			xs, ps := cdf.Points()
			var pts [][2]float64
			for j := range xs {
				pts = append(pts, [2]float64{xs[j], 100 * ps[j]})
			}
			series[marks[i]] = pts
		}
	}
	b.WriteString(stats.ASCIIPlot(60, 12, series))
	return b.String()
}

// CSV emits asn,bandwidth,ref_matched_pct,disc_matched_pct rows.
func (f *Figure2) CSV() string {
	var b strings.Builder
	b.WriteString("asn,bandwidth_km,ref_matched_pct,disc_matched_pct\n")
	for _, bw := range f.Bandwidths {
		for i, asn := range f.ASNs {
			fmt.Fprintf(&b, "%d,%.0f,%.2f,%.2f\n", asn, bw, f.RefMatchedPct[bw][i], f.DiscMatchedPct[bw][i])
		}
	}
	return b.String()
}
