package experiments

import (
	"fmt"
	"math"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/core"
	"eyeballas/internal/geo"
	"eyeballas/internal/parallel"
	"eyeballas/internal/rng"
)

// Bias quantifies §4.3's deferred question: how does uneven P2P
// penetration across locations distort the inferred PoP-level footprint?
// Two scenarios are injected into the usable samples of each validation
// AS, exactly as §4.3 frames them:
//
//   - Mild bias: every PoP city keeps a noticeable sample share, but the
//     shares are disproportionate (per-city thinning by a random factor).
//     §4.3 predicts the PoP is still discovered but its density value is
//     inaccurate.
//   - Significant bias: one non-dominant PoP city loses (almost) all of
//     its samples. §4.3 predicts that PoP is simply not discovered.
type Bias struct {
	NASes int

	// Mild bias: how many of the baseline PoP cities survive, and how
	// far their density values drift.
	MildPoPRetention  float64 // mean fraction of baseline PoPs still found
	MildDensityDriftR float64 // mean relative drift of surviving densities

	// Significant bias: fraction of ablated cities whose PoP disappears
	// from the footprint (the §4.3 prediction is "most").
	SignificantLossRate float64
	SignificantTrials   int
}

// RunBias runs both scenarios over the validation ASes at the paper's
// default bandwidth.
func RunBias(env *Env) (*Bias, error) {
	var asns []astopo.ASN
	for _, asn := range env.Reference.ASNs() {
		if rec := env.Dataset.AS(asn); rec != nil && len(rec.Samples) >= 200 {
			asns = append(asns, asn)
		}
	}
	if len(asns) == 0 {
		return nil, fmt.Errorf("experiments: no sufficiently sampled validation ASes")
	}
	type row struct {
		retention float64
		drift     float64
		driftN    int
		lost      int
		trials    int
	}
	rows := make([]row, len(asns))
	err := parallel.ForEach(env.ctx(), 0, asns, func(i int, asn astopo.ASN) error {
		rec := env.Dataset.AS(asn)
		src := rng.New(env.Seed).SplitN("bias", int(asn))
		base, err := core.EstimateFootprint(env.World.Gazetteer, rec.Samples, core.Options{})
		if err != nil {
			return err
		}
		if len(base.PoPs) == 0 {
			return nil
		}

		// --- mild bias: thin each city's samples by an independent
		// factor in [0.3, 1].
		factor := map[string]float64{}
		var mild []core.Sample
		for _, s := range rec.Samples {
			f, ok := factor[s.City]
			if !ok {
				f = src.Range(0.3, 1)
				factor[s.City] = f
			}
			if src.Bool(f) {
				mild = append(mild, s)
			}
		}
		mildFP, err := core.EstimateFootprint(env.World.Gazetteer, mild, core.Options{})
		if err != nil {
			return err
		}
		r := row{}
		for _, p := range base.PoPs {
			if mp, ok := findPoP(mildFP.PoPs, p.City.Name); ok {
				r.retention++
				if p.Density > 0 {
					r.drift += math.Abs(mp.Density-p.Density) / p.Density
					r.driftN++
				}
			}
		}
		r.retention /= float64(len(base.PoPs))

		// --- significant bias: ablate the least-dense baseline PoP city
		// entirely and check whether it disappears.
		victim := base.PoPs[len(base.PoPs)-1]
		if len(base.PoPs) > 1 {
			var ablated []core.Sample
			for _, s := range rec.Samples {
				if geo.DistanceKm(s.Loc, victim.City.Loc) <= 50 {
					continue // drop the victim city's samples
				}
				ablated = append(ablated, s)
			}
			if len(ablated) > 0 {
				ablFP, err := core.EstimateFootprint(env.World.Gazetteer, ablated, core.Options{})
				if err != nil {
					return err
				}
				r.trials = 1
				if _, ok := findPoP(ablFP.PoPs, victim.City.Name); !ok {
					r.lost = 1
				}
			}
		}
		rows[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Bias{NASes: len(asns)}
	var driftSum float64
	var driftN int
	var retSum float64
	var retN int
	for _, r := range rows {
		if r.retention > 0 || r.driftN > 0 {
			retSum += r.retention
			retN++
		}
		driftSum += r.drift
		driftN += r.driftN
		out.SignificantTrials += r.trials
		out.SignificantLossRate += float64(r.lost)
	}
	if retN > 0 {
		out.MildPoPRetention = retSum / float64(retN)
	}
	if driftN > 0 {
		out.MildDensityDriftR = driftSum / float64(driftN)
	}
	if out.SignificantTrials > 0 {
		out.SignificantLossRate /= float64(out.SignificantTrials)
	}
	return out, nil
}

func findPoP(pops []core.PoP, city string) (core.PoP, bool) {
	for _, p := range pops {
		if p.City.Name == city {
			return p, true
		}
	}
	return core.PoP{}, false
}

// Render narrates both scenarios against §4.3's predictions.
func (b *Bias) Render() string {
	var s strings.Builder
	fmt.Fprintf(&s, "Sampling-bias study (§4.3 future work; %d ASes)\n", b.NASes)
	fmt.Fprintf(&s, "  mild bias (per-city thinning to 30-100%%):\n")
	fmt.Fprintf(&s, "    PoP cities still discovered: %.0f%%   (§4.3 predicts: discovered, density off)\n", 100*b.MildPoPRetention)
	fmt.Fprintf(&s, "    mean relative density drift: %.0f%%\n", 100*b.MildDensityDriftR)
	fmt.Fprintf(&s, "  significant bias (one PoP city fully unsampled, %d trials):\n", b.SignificantTrials)
	fmt.Fprintf(&s, "    ablated PoP disappears:      %.0f%%   (§4.3 predicts: not discovered)\n", 100*b.SignificantLossRate)
	return s.String()
}
