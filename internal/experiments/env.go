// Package experiments regenerates every table and figure of the paper's
// evaluation over the synthetic world: Table 1 (target-dataset profile),
// Figure 1 (multi-bandwidth density surfaces), Figures 2(a)/2(b)
// (validation against published PoP lists), the §5 scalar statistics and
// DIMES comparison, and the §6 connectivity case study.
package experiments

import (
	"context"
	"fmt"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/faults"
	"eyeballas/internal/ixp"
	"eyeballas/internal/obs"
	"eyeballas/internal/p2p"
	"eyeballas/internal/pipeline"
	"eyeballas/internal/refdata"
	"eyeballas/internal/rng"
	"eyeballas/internal/traceroute"
)

// Scale selects the world size.
type Scale int

// Available scales.
const (
	// ScaleSmall is for tests: ~60 eyeball ASes.
	ScaleSmall Scale = iota
	// ScaleDefault is the full experiment scale: ~650 eyeball ASes,
	// the paper's 1233 shrunk to keep a laptop run in seconds.
	ScaleDefault
)

// Env bundles the world and every measurement dataset the experiments
// consume, generated once from a single seed.
type Env struct {
	Seed      uint64
	World     *astopo.World
	Routing   *bgp.Routing
	Crawl     *p2p.Crawl
	Dataset   *pipeline.Dataset
	Reference *refdata.Reference
	IXPData   *ixp.Dataset
	Traces    []traceroute.Trace
	// PipeCfg is the pipeline configuration the Dataset was built with,
	// kept so experiments that rebuild the pipeline (stability,
	// degradation) reuse the same thresholds.
	PipeCfg pipeline.Config
	// Ctx, when non-nil, cancels every experiment runner's worker pools
	// and pipeline rebuilds (the CLIs set it to their signal context).
	// Nil means context.Background().
	Ctx context.Context
}

// ctx returns the environment's cancellation context.
func (e *Env) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// EnvOption adjusts the pipeline configuration an environment is built
// with — the hook the CLIs use to surface streaming-ingestion knobs
// without growing every constructor's signature.
type EnvOption func(*pipeline.Config)

// WithBatchSize sets the streaming ingestion batch size (pipeline
// Config.BatchSize); <= 0 keeps the default. Datasets are bit-identical
// for every setting — the knob bounds transient memory only.
func WithBatchSize(n int) EnvOption {
	return func(c *pipeline.Config) { c.BatchSize = n }
}

// WithMaxSamplesPerAS caps per-AS sample retention (pipeline
// Config.MaxSamplesPerAS): reservoir samples plus sketch-backed P90
// statistics at bounded memory. 0 keeps every sample.
func WithMaxSamplesPerAS(n int) EnvOption {
	return func(c *pipeline.Config) { c.MaxSamplesPerAS = n }
}

// NewEnv generates the full experimental environment.
func NewEnv(seed uint64, scale Scale) (*Env, error) {
	return NewEnvObs(seed, scale, nil)
}

// NewEnvObs is NewEnv with an observability registry threaded through
// every stage (world generation span, crawl/pipeline metrics and funnel,
// per-dataset build spans). A nil registry is the disabled state and
// changes nothing about the generated environment.
func NewEnvObs(seed uint64, scale Scale, reg *obs.Registry) (*Env, error) {
	return NewEnvCtx(nil, seed, scale, reg, nil)
}

// NewEnvCtx is NewEnvObs with a cancellation context stored on the
// environment — every worker pool, crawl, and pipeline rebuild the
// experiments launch observes it (nil means context.Background()) —
// and an optional fault-injection plan threaded into the pipeline
// build. A nil plan is the unfaulted, bit-identical default.
func NewEnvCtx(ctx context.Context, seed uint64, scale Scale, reg *obs.Registry, plan *faults.Plan, opts ...EnvOption) (*Env, error) {
	var cfg astopo.Config
	var pipeCfg pipeline.Config
	switch scale {
	case ScaleSmall:
		cfg = astopo.SmallConfig(seed)
		pipeCfg = pipeline.DefaultConfig()
		pipeCfg.MinPeers = 60
	case ScaleDefault:
		cfg = astopo.DefaultConfig(seed)
		pipeCfg = pipeline.DefaultConfig()
	default:
		return nil, fmt.Errorf("experiments: unknown scale %d", scale)
	}
	pipeCfg.Obs = reg
	pipeCfg.Faults = plan
	for _, opt := range opts {
		opt(&pipeCfg)
	}
	genSpan := reg.StartSpan("experiments.generate_world")
	w, err := astopo.Generate(cfg)
	genSpan.End()
	if err != nil {
		return nil, err
	}
	return NewEnvWithWorldCtx(ctx, w, seed, pipeCfg)
}

// NewPaperScaleEnv generates the environment at the paper's population
// (1233 eyeball ASes, the literal 1000-peer floor). A full run takes a
// few minutes and several GB.
func NewPaperScaleEnv(seed uint64) (*Env, error) {
	return NewPaperScaleEnvObs(seed, nil)
}

// NewPaperScaleEnvObs is NewPaperScaleEnv with an observability
// registry.
func NewPaperScaleEnvObs(seed uint64, reg *obs.Registry) (*Env, error) {
	return NewPaperScaleEnvCtx(nil, seed, reg, nil)
}

// NewPaperScaleEnvCtx is NewPaperScaleEnvObs with a cancellation
// context stored on the environment and an optional fault plan.
func NewPaperScaleEnvCtx(ctx context.Context, seed uint64, reg *obs.Registry, plan *faults.Plan, opts ...EnvOption) (*Env, error) {
	genSpan := reg.StartSpan("experiments.generate_world")
	w, err := astopo.Generate(astopo.PaperConfig(seed))
	genSpan.End()
	if err != nil {
		return nil, err
	}
	pipeCfg := pipeline.PaperConfig()
	pipeCfg.Obs = reg
	pipeCfg.Faults = plan
	for _, opt := range opts {
		opt(&pipeCfg)
	}
	return NewEnvWithWorldCtx(ctx, w, seed, pipeCfg)
}

// NewEnvWithWorld builds the measurement environment over an existing
// world — typically one loaded from a snapshot — with explicit
// conditioning thresholds.
func NewEnvWithWorld(w *astopo.World, seed uint64, pipeCfg pipeline.Config) (*Env, error) {
	return NewEnvWithWorldCtx(nil, w, seed, pipeCfg)
}

// NewEnvWithWorldCtx is NewEnvWithWorld with a cancellation context
// stored on the environment (nil means context.Background()).
func NewEnvWithWorldCtx(ctx context.Context, w *astopo.World, seed uint64, pipeCfg pipeline.Config) (*Env, error) {
	reg := pipeCfg.Obs
	span := reg.StartSpan("experiments.env")
	defer span.End()
	env := &Env{Seed: seed, World: w, PipeCfg: pipeCfg, Ctx: ctx}
	routingSpan := span.Child("routing")
	env.Routing = bgp.ComputeRouting(w)
	routingSpan.End()
	var err error
	env.Dataset, env.Crawl, err = pipeline.Run(env.ctx(), w, p2p.DefaultConfig(), pipeCfg, seed)
	if err != nil {
		return nil, err
	}
	root := rng.New(seed)
	refSpan := span.Child("refdata")
	env.Reference = refdata.Build(w, refdata.DefaultConfig(), root.Split("refdata"))
	refSpan.End()
	// The paper consults the IXP mapping dataset as best-effort ground
	// truth (§6); use full detection here. Partial detection is modelled
	// and exercised in the ixp package itself.
	ixpSpan := span.Child("ixpdata")
	env.IXPData = ixp.Build(w, 1.0, root.Split("ixpdata"))
	ixpSpan.End()
	trSpan := span.Child("traceroute")
	env.Traces, err = traceroute.Simulate(w, env.Routing, traceroute.DefaultConfig(), root.Split("traceroute"))
	trSpan.End()
	if err != nil {
		return nil, err
	}
	return env, nil
}
