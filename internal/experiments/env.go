// Package experiments regenerates every table and figure of the paper's
// evaluation over the synthetic world: Table 1 (target-dataset profile),
// Figure 1 (multi-bandwidth density surfaces), Figures 2(a)/2(b)
// (validation against published PoP lists), the §5 scalar statistics and
// DIMES comparison, and the §6 connectivity case study.
package experiments

import (
	"fmt"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/ixp"
	"eyeballas/internal/p2p"
	"eyeballas/internal/pipeline"
	"eyeballas/internal/refdata"
	"eyeballas/internal/rng"
	"eyeballas/internal/traceroute"
)

// Scale selects the world size.
type Scale int

// Available scales.
const (
	// ScaleSmall is for tests: ~60 eyeball ASes.
	ScaleSmall Scale = iota
	// ScaleDefault is the full experiment scale: ~650 eyeball ASes,
	// the paper's 1233 shrunk to keep a laptop run in seconds.
	ScaleDefault
)

// Env bundles the world and every measurement dataset the experiments
// consume, generated once from a single seed.
type Env struct {
	Seed      uint64
	World     *astopo.World
	Routing   *bgp.Routing
	Crawl     *p2p.Crawl
	Dataset   *pipeline.Dataset
	Reference *refdata.Reference
	IXPData   *ixp.Dataset
	Traces    []traceroute.Trace
}

// NewEnv generates the full experimental environment.
func NewEnv(seed uint64, scale Scale) (*Env, error) {
	var cfg astopo.Config
	var pipeCfg pipeline.Config
	switch scale {
	case ScaleSmall:
		cfg = astopo.SmallConfig(seed)
		pipeCfg = pipeline.DefaultConfig()
		pipeCfg.MinPeers = 60
	case ScaleDefault:
		cfg = astopo.DefaultConfig(seed)
		pipeCfg = pipeline.DefaultConfig()
	default:
		return nil, fmt.Errorf("experiments: unknown scale %d", scale)
	}
	w, err := astopo.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return NewEnvWithWorld(w, seed, pipeCfg)
}

// NewPaperScaleEnv generates the environment at the paper's population
// (1233 eyeball ASes, the literal 1000-peer floor). A full run takes a
// few minutes and several GB.
func NewPaperScaleEnv(seed uint64) (*Env, error) {
	w, err := astopo.Generate(astopo.PaperConfig(seed))
	if err != nil {
		return nil, err
	}
	return NewEnvWithWorld(w, seed, pipeline.PaperConfig())
}

// NewEnvWithWorld builds the measurement environment over an existing
// world — typically one loaded from a snapshot — with explicit
// conditioning thresholds.
func NewEnvWithWorld(w *astopo.World, seed uint64, pipeCfg pipeline.Config) (*Env, error) {
	env := &Env{Seed: seed, World: w}
	env.Routing = bgp.ComputeRouting(w)
	var err error
	env.Dataset, env.Crawl, err = pipeline.Run(w, p2p.DefaultConfig(), pipeCfg, seed)
	if err != nil {
		return nil, err
	}
	root := rng.New(seed)
	env.Reference = refdata.Build(w, refdata.DefaultConfig(), root.Split("refdata"))
	// The paper consults the IXP mapping dataset as best-effort ground
	// truth (§6); use full detection here. Partial detection is modelled
	// and exercised in the ixp package itself.
	env.IXPData = ixp.Build(w, 1.0, root.Split("ixpdata"))
	env.Traces, err = traceroute.Simulate(w, env.Routing, traceroute.DefaultConfig(), root.Split("traceroute"))
	if err != nil {
		return nil, err
	}
	return env, nil
}
