package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"eyeballas/internal/astopo"
)

// forEachAS runs fn(i, asns[i]) for every index across all CPUs. Results
// are index-addressed by the callers, so ordering is preserved; the first
// error (lowest index) wins.
func forEachAS(asns []astopo.ASN, fn func(i int, asn astopo.ASN) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(asns) {
		workers = len(asns)
	}
	if workers <= 1 {
		for i, asn := range asns {
			if err := fn(i, asn); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     = int64(-1)
		mu       sync.Mutex
		firstErr error
		firstIdx = int(^uint(0) >> 1)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(asns) {
					return
				}
				if err := fn(i, asns[i]); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstErr, firstIdx = err, i
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
