package experiments

import (
	"fmt"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/p2p"
)

// Table1 is the profile of the target eyeball ASes — the reproduction of
// the paper's Table 1: per region, the number of usable peers by crawl
// source and the number of ASes by geographic level.
type Table1 struct {
	Regions []gazetteer.Region
	Peers   map[gazetteer.Region]map[p2p.App]int
	Levels  map[gazetteer.Region]map[astopo.Level]int
	// Totals across the profiled regions.
	TotalASes  int
	TotalPeers int
}

// RunTable1 profiles the target dataset over the paper's three regions.
func RunTable1(env *Env) *Table1 {
	t := &Table1{
		Regions: []gazetteer.Region{gazetteer.NA, gazetteer.EU, gazetteer.AS},
		Peers:   make(map[gazetteer.Region]map[p2p.App]int),
		Levels:  make(map[gazetteer.Region]map[astopo.Level]int),
	}
	profiled := map[gazetteer.Region]bool{}
	for _, r := range t.Regions {
		profiled[r] = true
		t.Peers[r] = make(map[p2p.App]int)
		t.Levels[r] = make(map[astopo.Level]int)
	}
	for _, rec := range env.Dataset.Records() {
		if !profiled[rec.Region] {
			continue
		}
		for app, n := range rec.PeersByApp {
			t.Peers[rec.Region][app] += n
		}
		t.Levels[rec.Region][rec.Class.Level]++
		t.TotalASes++
		t.TotalPeers += len(rec.Samples)
	}
	return t
}

// Render produces the paper-style text table.
func (t *Table1) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Profile of the target eyeball ASes (%d ASes, %d peers)\n", t.TotalASes, t.TotalPeers)
	fmt.Fprintf(&b, "%-7s %11s %11s %11s | %6s %6s %8s\n",
		"Region", "Kad", "Gnu", "BT", "City", "State", "Country")
	for _, r := range t.Regions {
		fmt.Fprintf(&b, "%-7s %11d %11d %11d | %6d %6d %8d\n",
			r,
			t.Peers[r][p2p.Kad], t.Peers[r][p2p.Gnutella], t.Peers[r][p2p.BitTorrent],
			t.Levels[r][astopo.LevelCity], t.Levels[r][astopo.LevelState], t.Levels[r][astopo.LevelCountry])
	}
	return b.String()
}

// CSV renders machine-readable rows: region,kad,gnutella,bittorrent,city,state,country.
func (t *Table1) CSV() string {
	var b strings.Builder
	b.WriteString("region,kad,gnutella,bittorrent,city,state,country\n")
	for _, r := range t.Regions {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d\n",
			r,
			t.Peers[r][p2p.Kad], t.Peers[r][p2p.Gnutella], t.Peers[r][p2p.BitTorrent],
			t.Levels[r][astopo.LevelCity], t.Levels[r][astopo.LevelState], t.Levels[r][astopo.LevelCountry])
	}
	return b.String()
}
