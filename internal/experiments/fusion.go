package experiments

import (
	"fmt"
	"strings"

	"eyeballas/internal/astopo"
	"eyeballas/internal/core"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/parallel"
	"eyeballas/internal/traceroute"
)

// Fusion implements the combination the paper's conclusion (§7)
// advocates: fuse the edge-based user-density view with targeted
// traceroute measurements. Per AS, the fused PoP set is the union of the
// KDE-discovered PoPs and the traceroute-observed PoPs (deduplicated at
// city scale); recall against published lists is compared for the two
// inputs and the fusion.
type Fusion struct {
	NASes int

	KDERecall   float64 // mean per-AS % of published PoPs matched
	TraceRecall float64
	FusedRecall float64
	// FusedPlusRecall adds the full §7 loop: targeted traceroutes aimed
	// at the KDE-discovered PoP cities, whose paths expose additional
	// entry/infrastructure PoPs.
	FusedPlusRecall float64

	KDEPoPs, TracePoPs, FusedPoPs, FusedPlusPoPs float64 // mean per-AS set sizes
}

// RunFusion evaluates the fusion over the ASes present in the target
// dataset, the reference dataset, and the traceroute observations.
func RunFusion(env *Env) (*Fusion, error) {
	tracePoPs := traceroute.PoPs(env.Traces)
	var asns []astopo.ASN
	for _, asn := range env.Reference.ASNs() {
		if env.Dataset.AS(asn) != nil && len(tracePoPs[asn]) > 0 {
			asns = append(asns, asn)
		}
	}
	if len(asns) == 0 {
		return nil, fmt.Errorf("experiments: no ASes common to all three datasets")
	}
	// Footprints first (parallel), so the targeted campaign can aim at
	// the discovered PoP cities.
	footprints := make([][]core.PoP, len(asns))
	err := parallel.ForEach(env.ctx(), 0, asns, func(i int, asn astopo.ASN) error {
		rec := env.Dataset.AS(asn)
		fp, err := core.EstimateFootprint(env.World.Gazetteer, rec.Samples, core.Options{})
		if err != nil {
			return err
		}
		footprints[i] = fp.PoPs
		return nil
	})
	if err != nil {
		return nil, err
	}

	// The §7 targeted campaign: probe each AS at its discovered cities.
	targets := make(map[astopo.ASN][]geo.Point, len(asns))
	for i, asn := range asns {
		for _, p := range footprints[i] {
			targets[asn] = append(targets[asn], p.City.Loc)
		}
	}
	targetedTraces, err := traceroute.Targeted(env.World, env.Routing, targets, 8)
	if err != nil {
		return nil, err
	}
	targetedPoPs := traceroute.PoPs(targetedTraces)

	out := &Fusion{NASes: len(asns)}
	n := float64(len(asns))
	for i, asn := range asns {
		ref := env.Reference.Locations(asn)
		observed := tracePoPs[asn]
		fused := fusePoPs(footprints[i], observed, env.World.Gazetteer)
		fusedPlus := fusePoPs(fused, targetedPoPs[asn], env.World.Gazetteer)

		mKDE := core.MatchPoPs(footprints[i], ref, core.MatchRadiusKm)
		trMatched := matchPoints(observed, ref, core.MatchRadiusKm)
		mFu := core.MatchPoPs(fused, ref, core.MatchRadiusKm)
		mFuPlus := core.MatchPoPs(fusedPlus, ref, core.MatchRadiusKm)

		out.KDERecall += 100 * mKDE.RefMatchedFrac() / n
		out.TraceRecall += 100 * float64(trMatched) / float64(len(ref)) / n
		out.FusedRecall += 100 * mFu.RefMatchedFrac() / n
		out.FusedPlusRecall += 100 * mFuPlus.RefMatchedFrac() / n
		out.KDEPoPs += float64(len(footprints[i])) / n
		out.TracePoPs += float64(len(observed)) / n
		out.FusedPoPs += float64(len(fused)) / n
		out.FusedPlusPoPs += float64(len(fusedPlus)) / n
	}
	return out, nil
}

// fusePoPs unions KDE PoPs with traceroute-observed locations, adding a
// traceroute point only when it is not already within the match radius of
// a KDE PoP; added points are city-mapped like KDE peaks.
func fusePoPs(kde []core.PoP, observed []geo.Point, gaz *gazetteer.Gazetteer) []core.PoP {
	fused := append([]core.PoP(nil), kde...)
	for _, pt := range observed {
		dup := false
		for _, p := range fused {
			if geo.DistanceKm(pt, p.City.Loc) <= core.MatchRadiusKm ||
				geo.DistanceKm(pt, p.PeakLoc) <= core.MatchRadiusKm {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		city, ok := gaz.MostPopulousWithin(pt, core.MatchRadiusKm)
		if !ok {
			continue
		}
		fused = append(fused, core.PoP{City: city, PeakLoc: pt})
	}
	return fused
}

func matchPoints(pts, ref []geo.Point, radiusKm float64) int {
	matched := 0
	for _, r := range ref {
		for _, p := range pts {
			if geo.DistanceKm(r, p) <= radiusKm {
				matched++
				break
			}
		}
	}
	return matched
}

// Render prints the three-way recall comparison.
func (f *Fusion) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Edge+traceroute fusion (§7; %d ASes in all three datasets)\n", f.NASes)
	fmt.Fprintf(&b, "  %-18s %10s %10s\n", "source", "PoPs/AS", "recall")
	fmt.Fprintf(&b, "  %-18s %10.2f %9.1f%%\n", "KDE (40 km)", f.KDEPoPs, f.KDERecall)
	fmt.Fprintf(&b, "  %-18s %10.2f %9.1f%%\n", "traceroute", f.TracePoPs, f.TraceRecall)
	fmt.Fprintf(&b, "  %-18s %10.2f %9.1f%%\n", "fused", f.FusedPoPs, f.FusedRecall)
	fmt.Fprintf(&b, "  %-18s %10.2f %9.1f%%  (+ targeted probes at KDE cities)\n",
		"fused+targeted", f.FusedPlusPoPs, f.FusedPlusRecall)
	return b.String()
}
