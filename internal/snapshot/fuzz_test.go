package snapshot

import (
	"errors"
	"testing"
)

// FuzzReadSnapshot is the reader's never-panic guarantee: whatever
// bytes arrive — truncated, bit-flipped, adversarially structured —
// Decode either returns a snapshot or a *FormatError. It must never
// panic, over-allocate on fabricated counts, or accept an input that
// fails validation. CI runs this as a 10s smoke on every push.
func FuzzReadSnapshot(f *testing.F) {
	valid := Encode(testSnapshot(nil))
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("eyeballas-snap/"))
	f.Add(append([]byte("eyeballas-snap/\x01"), 0xFF, 0, 0, 0, 0, 0, 0, 0, 0))
	// Seeds that poke specific validators: version skew, a huge
	// declared count, a damaged checksum.
	skew := append([]byte(nil), valid...)
	skew[len(magic)] = Version + 1
	f.Add(skew)
	damaged := append([]byte(nil), valid...)
	damaged[len(damaged)/2] ^= 0x10
	f.Add(damaged)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data) // must not panic
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("Decode error %v is not a *FormatError", err)
			}
			return
		}
		// Accepted input: the snapshot must be internally consistent
		// enough to re-encode and re-read without error.
		re := Encode(snap)
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-encode of accepted input fails to decode: %v", err)
		}
	})
}
