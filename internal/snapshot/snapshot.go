// Package snapshot implements the versioned binary dataset artifact
// format "eyeballas-snap/1": a conditioned pipeline.Dataset (per-AS
// records with their samples, the funnel ledger, the streaming ledger)
// serialized together with the compiled flat LPM origin table, so a
// serving process can answer classification, origin-lookup, and
// footprint queries without re-running the crawl→geolocate→LPM→
// condition funnel.
//
// Design constraints:
//
//   - Deterministic bytes. The same dataset always serializes to the
//     same bytes: every map is emitted through a fixed ordering
//     (Dataset.Order for ASes, ascending app ID for per-app counters,
//     funnel declaration order for stages and drop reasons), floats are
//     written as their IEEE-754 bit patterns, and the format carries no
//     timestamps. A golden-file test pins the exact encoding.
//
//   - Strict reading. The reader rejects — with typed errors, never a
//     panic — bad magic (ErrBadMagic), versions newer than it
//     understands (ErrVersion), truncated input (ErrTruncated), any
//     section or whole-file checksum mismatch (ErrChecksum), and
//     structurally invalid payloads such as out-of-order AS records or
//     malformed LPM segments (ErrCorrupt). errors.Is matches all of
//     them through the *FormatError wrapper, which adds the byte offset
//     of the failure.
//
//   - Bit-identical round trip. Write→Read reproduces the dataset
//     exactly: sample coordinates and error estimates compare equal
//     under math.Float64bits, funnel and drop ledgers match count for
//     count, and the reconstructed origin table answers every lookup
//     identically to the one serialized (property-tested in
//     roundtrip_test.go, never-panic fuzzed in fuzz_test.go).
//
// # Wire layout
//
//	magic   15 bytes  "eyeballas-snap/"
//	version 1 byte    binary version number (currently 1)
//	section ×3        tag u8, length u64, payload, CRC32-C u32 (payload)
//	end     tag 0xFF, length u64 = 0
//	crc     u32       CRC32-C of every preceding byte
//
// Sections appear in fixed order — meta (seed + label), dataset, LPM —
// each length-prefixed and individually checksummed so a flipped bit is
// attributed to the section it hit; the trailing whole-file checksum
// additionally covers the headers the per-section checksums do not.
// All integers are little-endian; strings are u32-length-prefixed UTF-8.
package snapshot

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"eyeballas/internal/bgp"
	"eyeballas/internal/faults"
	"eyeballas/internal/pipeline"
)

// Version is the highest format version this package writes and reads.
const Version = 1

// magic is the format tag preceding the version byte; the full 16-byte
// header of a v1 file spells "eyeballas-snap/" + 0x01.
const magic = "eyeballas-snap/"

// Section tags, in required file order.
const (
	secMeta    = 0x01
	secDataset = 0x02
	secLPM     = 0x03
	secEnd     = 0xFF
)

// castagnoli is the CRC32-C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed rejection reasons. Read wraps each in a *FormatError carrying
// the byte offset; match with errors.Is.
var (
	// ErrBadMagic: the input does not begin with the format magic.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrVersion: the artifact declares a version this reader does not
	// understand (newer than Version).
	ErrVersion = errors.New("snapshot: unsupported version")
	// ErrTruncated: the input ends before the declared structure does.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrChecksum: a section or whole-file CRC32-C mismatch.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrCorrupt: the bytes checksum correctly but decode to a
	// structurally invalid artifact (impossible counts, out-of-order
	// records, malformed LPM segments, trailing garbage).
	ErrCorrupt = errors.New("snapshot: corrupt")
)

// FormatError is the typed rejection every Read failure returns: the
// reason (one of the Err* sentinels, reachable via errors.Is), the byte
// offset at which reading failed, and a human-readable detail.
type FormatError struct {
	Reason error
	Offset int
	Detail string
}

// Error renders the rejection on one line.
func (e *FormatError) Error() string {
	return fmt.Sprintf("%v at offset %d: %s", e.Reason, e.Offset, e.Detail)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *FormatError) Unwrap() error { return e.Reason }

// Meta is the artifact's provenance record. It deliberately carries no
// wall-clock timestamp: two builds of the same dataset must be
// byte-identical.
type Meta struct {
	// Seed is the world/crawl seed the dataset was built from.
	Seed uint64
	// Label is a free-form provenance label (the writing tool's name,
	// a pipeline configuration tag, ...). May be empty.
	Label string
}

// Snapshot is one serialized artifact: the conditioned dataset plus the
// compiled origin table it was built with. Origins may be nil (a
// dataset-only artifact); the serve layer then refuses /v1/lookup.
type Snapshot struct {
	Meta    Meta
	Dataset *pipeline.Dataset
	Origins *bgp.OriginTable
}

// Mangle applies the faults.SnapCorrupt fault point to rendered
// snapshot bytes: each byte position is an injection site, and hit
// bytes are XORed with a nonzero site-derived mask. Decisions are pure
// functions of (plan seed, byte offset), so the same plan always
// corrupts the same artifact the same way. It returns the number of
// bytes flipped; a nil injector flips nothing.
func Mangle(data []byte, in *faults.Injector) int {
	if in == nil {
		return 0
	}
	flipped := 0
	for i := range data {
		if !in.Hit(uint64(i)) {
			continue
		}
		m := byte(in.Rand(uint64(i)))
		if m == 0 {
			m = 0xFF
		}
		data[i] ^= m
		flipped++
	}
	return flipped
}

// enc is the append-only deterministic encoder: little-endian
// fixed-width integers, Float64bits floats, length-prefixed strings.
type enc struct{ b []byte }

func (e *enc) u8(v byte) { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *enc) u64(v uint64) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// section frames a payload: tag, length, payload, payload CRC32-C.
func (e *enc) section(tag byte, payload []byte) {
	e.u8(tag)
	e.u64(uint64(len(payload)))
	e.b = append(e.b, payload...)
	e.u32(crc32.Checksum(payload, castagnoli))
}

// dec is the sticky-error decoder over an in-memory artifact. The
// first failure wins; every subsequent accessor is a no-op returning
// zero values, so decode code reads straight-line and checks err once
// per section.
type dec struct {
	b   []byte
	off int
	err *FormatError
}

func (d *dec) fail(reason error, format string, args ...any) {
	if d.err == nil {
		d.err = &FormatError{Reason: reason, Offset: d.off, Detail: fmt.Sprintf(format, args...)}
	}
}

func (d *dec) need(n int, what string) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.b) || d.off+n < d.off {
		d.fail(ErrTruncated, "need %d bytes for %s, %d remain", n, what, len(d.b)-d.off)
		return false
	}
	return true
}

func (d *dec) u8(what string) byte {
	if !d.need(1, what) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32(what string) uint32 {
	if !d.need(4, what) {
		return 0
	}
	b := d.b[d.off:]
	d.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (d *dec) u64(what string) uint64 {
	if !d.need(8, what) {
		return 0
	}
	b := d.b[d.off:]
	d.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (d *dec) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }

func (d *dec) str(what string) string {
	n := d.u32(what + " length")
	if !d.need(int(n), what) {
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *dec) bool(what string) bool { return d.u8(what) != 0 }

// count reads a u32 element count and rejects counts that could not
// possibly fit in the remaining bytes at minElemSize bytes per element —
// the guard that keeps fuzzed inputs from driving huge allocations.
func (d *dec) count(minElemSize int, what string) int {
	n := d.u32(what + " count")
	if d.err != nil {
		return 0
	}
	if minElemSize > 0 && int(n) > (len(d.b)-d.off)/minElemSize {
		d.fail(ErrTruncated, "%s count %d exceeds remaining input", what, n)
		return 0
	}
	return int(n)
}
