package snapshot

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/core"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/obs"
	"eyeballas/internal/p2p"
	"eyeballas/internal/pipeline"
)

// Encode renders the snapshot to its canonical byte form. The output is
// a pure function of the snapshot's contents: encoding the same dataset
// twice — or a dataset and its Read-back copy — yields identical bytes.
func Encode(s *Snapshot) []byte {
	var e enc
	e.b = append(e.b, magic...)
	e.u8(Version)
	e.section(secMeta, encodeMeta(s.Meta))
	e.section(secDataset, encodeDataset(s.Dataset))
	e.section(secLPM, encodeLPM(s.Origins))
	e.u8(secEnd)
	e.u64(0)
	e.u32(crc32.Checksum(e.b, castagnoli))
	return e.b
}

// Write renders the snapshot and writes it to w in one call.
func Write(w io.Writer, s *Snapshot) error {
	_, err := w.Write(Encode(s))
	return err
}

// WriteFile writes the rendered artifact to path with 0644
// permissions. Since the crash-safe publish work it delegates to
// WriteFileAtomic: the artifact appears atomically (temp file + fsync
// + rename), so a crash or concurrent reload never observes a torn
// snapshot.
func WriteFile(path string, s *Snapshot) error {
	return WriteFileAtomic(path, s)
}

func encodeMeta(m Meta) []byte {
	var e enc
	e.u64(m.Seed)
	e.str(m.Label)
	return e.b
}

func encodeDataset(ds *pipeline.Dataset) []byte {
	var e enc
	e.u64(uint64(ds.CrawledPeers))
	e.u64(uint64(ds.TotalPeers))
	e.bool(ds.Degraded)
	e.str(ds.DegradedReason)

	d := ds.Drops
	for _, v := range [7]int{d.NoCityRecord, d.GarbageCoord, d.HighGeoErr, d.UnmappedIP, d.DupIP, d.SmallAS, d.HighErrAS} {
		e.u64(uint64(v))
	}

	e.bool(ds.Stream != nil)
	if ds.Stream != nil {
		st := ds.Stream
		for _, v := range [5]int{st.BatchSize, st.Batches, st.MaxBatch, st.DedupEntries, st.PeakLiveSamples} {
			e.u64(uint64(v))
		}
	}

	e.bool(ds.Funnel != nil)
	if ds.Funnel != nil {
		encodeFunnel(&e, ds.Funnel)
	}

	e.u32(uint32(len(ds.Order)))
	for _, asn := range ds.Order {
		encodeRecord(&e, ds.ASes[asn])
	}
	return e.b
}

// encodeFunnel emits the ledger in declaration order: stages as the
// funnel declared them, drop reasons as each stage declared them — the
// same order Funnel.Drops exposes — so the encoding is deterministic
// and the Read-side rebuild re-declares everything identically.
func encodeFunnel(e *enc, f *obs.Funnel) {
	e.str(f.Name())
	byStage := make(map[string][]obs.DropCount)
	for _, row := range f.Drops() {
		byStage[row.Stage] = append(byStage[row.Stage], row)
	}
	stages := f.Stages()
	e.u32(uint32(len(stages)))
	for _, s := range stages {
		e.str(s.Name())
		e.u64(uint64(s.InCount()))
		e.u64(uint64(s.OutCount()))
		rows := byStage[s.Name()]
		e.u32(uint32(len(rows)))
		for _, row := range rows {
			e.str(row.Reason)
			e.u64(uint64(row.Count))
		}
	}
}

func encodeRecord(e *enc, rec *pipeline.ASRecord) {
	e.u32(uint32(rec.ASN))
	e.u64(uint64(rec.Users))
	e.f64(rec.P90GeoErrKm)
	e.u8(byte(rec.Class.Level))
	e.str(rec.Class.Place)
	e.f64(rec.Class.Share)
	e.str(string(rec.Region))

	// Per-app counters in fixed p2p.Apps order, zero counts elided, so
	// map iteration order never reaches the wire.
	present := 0
	for _, app := range p2p.Apps {
		if rec.PeersByApp[app] != 0 {
			present++
		}
	}
	e.u32(uint32(present))
	for _, app := range p2p.Apps {
		if n := rec.PeersByApp[app]; n != 0 {
			e.u8(byte(app))
			e.u64(uint64(n))
		}
	}

	e.u32(uint32(len(rec.Samples)))
	for _, s := range rec.Samples {
		e.f64(s.Loc.Lat)
		e.f64(s.Loc.Lon)
		e.str(s.City)
		e.str(s.State)
		e.str(s.Country)
		e.str(string(s.Region))
		e.f64(s.GeoErrKm)
	}
}

// encodeLPM emits the compiled flat LPM arrays (PR 2's frozen form):
// the (prefix, origin-ASN) pairs in Walk order, then the flattened
// segment list. The derived top-16-bit direct index is rebuilt on read.
func encodeLPM(ot *bgp.OriginTable) []byte {
	var e enc
	var c *ipnet.Compiled[astopo.ASN]
	if ot != nil {
		c = ot.Compiled()
	}
	e.bool(c != nil)
	if c == nil {
		return e.b
	}
	prefixes, values, starts, segIdx := c.Dump()
	e.u32(uint32(len(prefixes)))
	for i, p := range prefixes {
		e.u32(uint32(p.Addr))
		e.u8(byte(p.Bits))
		e.u32(uint32(values[i]))
	}
	e.u32(uint32(len(starts)))
	for k, start := range starts {
		e.u32(uint32(start))
		e.u32(uint32(segIdx[k]))
	}
	return e.b
}

// Read parses a snapshot from r, consuming it to EOF. Every failure
// mode returns a *FormatError wrapping one of the Err* sentinels:
// inputs that don't start with the format magic (ErrBadMagic), declare
// a version newer than Version (ErrVersion), end early (ErrTruncated),
// fail a section or whole-file CRC (ErrChecksum), or decode to
// structurally invalid data (ErrCorrupt). It never panics, whatever
// the input (fuzzed in fuzz_test.go).
func Read(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// ReadFile reads a snapshot artifact from disk.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Decode parses a complete in-memory artifact (see Read).
func Decode(data []byte) (*Snapshot, error) {
	d := &dec{b: data}

	// Header: magic + version. A short input that matches the magic as
	// far as it goes is truncated, not foreign.
	if !bytes.HasPrefix(data, []byte(magic)) {
		n := len(data)
		if n > len(magic) {
			n = len(magic)
		}
		if n < len(magic) && bytes.Equal(data[:n], []byte(magic)[:n]) {
			return nil, &FormatError{Reason: ErrTruncated, Offset: n, Detail: "input ends inside the format magic"}
		}
		return nil, &FormatError{Reason: ErrBadMagic, Offset: 0, Detail: "input does not begin with \"eyeballas-snap/\""}
	}
	d.off = len(magic)
	version := d.u8("version")
	if d.err != nil {
		return nil, d.err
	}
	if version == 0 || version > Version {
		return nil, &FormatError{Reason: ErrVersion, Offset: len(magic),
			Detail: fmt.Sprintf("artifact version %d, reader understands up to %d", version, Version)}
	}

	// Whole-file checksum: the last 4 bytes cover everything before
	// them, including section headers the per-section CRCs don't.
	if len(data) < len(magic)+1+4 {
		return nil, &FormatError{Reason: ErrTruncated, Offset: len(data), Detail: "input ends before the file checksum"}
	}
	body := data[:len(data)-4]
	wantFile := uint32(data[len(data)-4]) | uint32(data[len(data)-3])<<8 |
		uint32(data[len(data)-2])<<16 | uint32(data[len(data)-1])<<24
	if got := crc32.Checksum(body, castagnoli); got != wantFile {
		return nil, &FormatError{Reason: ErrChecksum, Offset: len(body),
			Detail: fmt.Sprintf("file checksum %08x, computed %08x", wantFile, got)}
	}
	d.b = body // sections must end exactly at the file checksum

	snap := &Snapshot{}
	metaPayload := d.readSection(secMeta, "meta")
	dsPayload := d.readSection(secDataset, "dataset")
	lpmPayload := d.readSection(secLPM, "lpm")
	if d.err != nil {
		return nil, d.err
	}
	// End marker, then nothing.
	if tag := d.u8("end tag"); d.err == nil && tag != secEnd {
		d.off--
		d.fail(ErrCorrupt, "expected end marker 0xFF, found tag 0x%02x", tag)
	}
	if n := d.u64("end length"); d.err == nil && n != 0 {
		d.fail(ErrCorrupt, "end marker declares %d payload bytes, want 0", n)
	}
	if d.err == nil && d.off != len(d.b) {
		d.fail(ErrCorrupt, "%d trailing bytes after end marker", len(d.b)-d.off)
	}
	if d.err != nil {
		return nil, d.err
	}

	if err := decodeMeta(metaPayload, &snap.Meta); err != nil {
		return nil, err
	}
	ds, err := decodeDataset(dsPayload)
	if err != nil {
		return nil, err
	}
	snap.Dataset = ds
	origins, err := decodeLPM(lpmPayload)
	if err != nil {
		return nil, err
	}
	snap.Origins = origins
	return snap, nil
}

// readSection consumes one framed section, verifying the expected tag
// and the payload CRC, and returns the payload.
func (d *dec) readSection(wantTag byte, name string) []byte {
	if d.err != nil {
		return nil
	}
	tagOff := d.off
	tag := d.u8(name + " section tag")
	if d.err == nil && tag != wantTag {
		d.off = tagOff
		d.fail(ErrCorrupt, "expected %s section (tag 0x%02x), found tag 0x%02x", name, wantTag, tag)
	}
	n := d.u64(name + " section length")
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(ErrTruncated, "%s section declares %d payload bytes, %d remain", name, n, len(d.b)-d.off)
		return nil
	}
	payload := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	want := d.u32(name + " section checksum")
	if d.err != nil {
		return nil
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		d.off -= 4
		d.fail(ErrChecksum, "%s section checksum %08x, computed %08x", name, want, got)
		return nil
	}
	return payload
}

func decodeMeta(payload []byte, m *Meta) error {
	d := &dec{b: payload}
	m.Seed = d.u64("meta seed")
	m.Label = d.str("meta label")
	if d.err == nil && d.off != len(payload) {
		d.fail(ErrCorrupt, "%d trailing bytes in meta section", len(payload)-d.off)
	}
	if d.err != nil {
		return d.err
	}
	return nil
}

// maxCount rejects u64 counters that cannot be represented as a
// non-negative int (the in-memory types are ints).
const maxCount = uint64(math.MaxInt64)

func (d *dec) intCounter(what string) int {
	v := d.u64(what)
	if d.err == nil && v > maxCount {
		d.fail(ErrCorrupt, "%s count %d overflows", what, v)
	}
	return int(v)
}

func decodeDataset(payload []byte) (*pipeline.Dataset, error) {
	d := &dec{b: payload}
	ds := &pipeline.Dataset{ASes: make(map[astopo.ASN]*pipeline.ASRecord)}
	ds.CrawledPeers = d.intCounter("crawled peers")
	ds.TotalPeers = d.intCounter("total peers")
	ds.Degraded = d.bool("degraded flag")
	ds.DegradedReason = d.str("degraded reason")

	dr := &ds.Drops
	for _, p := range []*int{&dr.NoCityRecord, &dr.GarbageCoord, &dr.HighGeoErr, &dr.UnmappedIP, &dr.DupIP, &dr.SmallAS, &dr.HighErrAS} {
		*p = d.intCounter("drop counter")
	}

	if d.bool("stream-stats flag") {
		st := &pipeline.StreamStats{}
		for _, p := range []*int{&st.BatchSize, &st.Batches, &st.MaxBatch, &st.DedupEntries, &st.PeakLiveSamples} {
			*p = d.intCounter("stream counter")
		}
		ds.Stream = st
	}

	if d.bool("funnel flag") {
		ds.Funnel = decodeFunnel(d)
	}

	nAS := d.count(4+8+8+1+4+8+4+4+4, "AS record")
	ds.Order = make([]astopo.ASN, 0, nAS)
	var prev astopo.ASN = -1
	for i := 0; i < nAS && d.err == nil; i++ {
		rec := decodeRecord(d)
		if d.err != nil {
			break
		}
		if rec.ASN <= prev {
			d.fail(ErrCorrupt, "AS records out of order: AS%d after AS%d", rec.ASN, prev)
			break
		}
		prev = rec.ASN
		ds.Order = append(ds.Order, rec.ASN)
		ds.ASes[rec.ASN] = rec
	}
	if d.err == nil && d.off != len(payload) {
		d.fail(ErrCorrupt, "%d trailing bytes in dataset section", len(payload)-d.off)
	}
	if d.err != nil {
		return nil, d.err
	}
	return ds, nil
}

// decodeFunnel rebuilds the ledger through the funnel's own public
// declaration API so stage and reason order survive a round trip.
func decodeFunnel(d *dec) *obs.Funnel {
	f := obs.NewFunnel(d.str("funnel name"))
	nStages := d.count(4+8+8+4, "funnel stage")
	for i := 0; i < nStages && d.err == nil; i++ {
		name := d.str("stage name")
		in := d.intCounter("stage in")
		out := d.intCounter("stage out")
		s := f.Stage(name)
		s.In(in)
		s.Out(out)
		nReasons := d.count(4+8, "drop reason")
		for j := 0; j < nReasons && d.err == nil; j++ {
			reason := d.str("drop reason")
			count := d.intCounter("drop count")
			s.DeclareReasons(reason)
			s.Drop(reason, count)
		}
	}
	return f
}

func decodeRecord(d *dec) *pipeline.ASRecord {
	rec := &pipeline.ASRecord{}
	rec.ASN = astopo.ASN(d.u32("ASN"))
	rec.Users = d.intCounter("users")
	rec.P90GeoErrKm = d.f64("p90 geo error")
	level := d.u8("class level")
	if d.err == nil && astopo.Level(level) > astopo.LevelGlobal {
		d.fail(ErrCorrupt, "class level %d out of range", level)
	}
	rec.Class.Level = astopo.Level(level)
	rec.Class.Place = d.str("class place")
	rec.Class.Share = d.f64("class share")
	rec.Region = gazetteer.Region(d.str("AS region"))

	nApps := d.count(1+8, "per-app counter")
	if nApps > 0 {
		rec.PeersByApp = make(map[p2p.App]int, nApps)
	}
	prevApp := -1
	for i := 0; i < nApps && d.err == nil; i++ {
		app := int(d.u8("app id"))
		n := d.intCounter("app peer count")
		if d.err != nil {
			break
		}
		if app >= len(p2p.Apps) {
			d.fail(ErrCorrupt, "unknown app id %d", app)
			break
		}
		if app <= prevApp {
			d.fail(ErrCorrupt, "per-app counters out of order at app %d", app)
			break
		}
		prevApp = app
		rec.PeersByApp[p2p.App(app)] = n
	}

	nSamples := d.count(8+8+4+4+4+4+8, "sample")
	rec.Samples = make([]core.Sample, 0, nSamples)
	for i := 0; i < nSamples && d.err == nil; i++ {
		var s core.Sample
		s.Loc = geo.Point{Lat: d.f64("sample lat"), Lon: d.f64("sample lon")}
		s.City = d.str("sample city")
		s.State = d.str("sample state")
		s.Country = d.str("sample country")
		s.Region = gazetteer.Region(d.str("sample region"))
		s.GeoErrKm = d.f64("sample geo error")
		rec.Samples = append(rec.Samples, s)
	}
	return rec
}

func decodeLPM(payload []byte) (*bgp.OriginTable, error) {
	d := &dec{b: payload}
	if !d.bool("lpm flag") {
		if d.err == nil && d.off != len(payload) {
			d.fail(ErrCorrupt, "%d trailing bytes in lpm section", len(payload)-d.off)
		}
		if d.err != nil {
			return nil, d.err
		}
		return nil, nil
	}
	nPrefixes := d.count(4+1+4, "lpm prefix")
	prefixes := make([]ipnet.Prefix, 0, nPrefixes)
	values := make([]astopo.ASN, 0, nPrefixes)
	for i := 0; i < nPrefixes && d.err == nil; i++ {
		addr := ipnet.Addr(d.u32("prefix address"))
		bits := int(d.u8("prefix length"))
		asn := astopo.ASN(d.u32("prefix origin"))
		prefixes = append(prefixes, ipnet.Prefix{Addr: addr, Bits: bits})
		values = append(values, asn)
	}
	nSegs := d.count(4+4, "lpm segment")
	starts := make([]ipnet.Addr, 0, nSegs)
	segIdx := make([]int32, 0, nSegs)
	for k := 0; k < nSegs && d.err == nil; k++ {
		starts = append(starts, ipnet.Addr(d.u32("segment start")))
		segIdx = append(segIdx, int32(d.u32("segment index")))
	}
	if d.err == nil && d.off != len(payload) {
		d.fail(ErrCorrupt, "%d trailing bytes in lpm section", len(payload)-d.off)
	}
	if d.err != nil {
		return nil, d.err
	}
	c, err := ipnet.CompiledFromDump(prefixes, values, starts, segIdx)
	if err != nil {
		return nil, &FormatError{Reason: ErrCorrupt, Offset: 0, Detail: err.Error()}
	}
	return bgp.NewOriginTableFromCompiled(c), nil
}
