package snapshot

import (
	"bytes"
	"flag"
	"os"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden snapshot artifact")

// TestGoldenBytes pins the exact v1 encoding: the synthetic test
// snapshot must serialize to the committed testdata/golden.snap byte
// for byte. A diff here means the wire format changed — which requires
// a version bump, not a silent re-golden. Regenerate deliberately with
//
//	go test ./internal/snapshot -run TestGoldenBytes -update
func TestGoldenBytes(t *testing.T) {
	got := Encode(testSnapshot(t))
	const path = "testdata/golden.snap"
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("encoding diverged from golden artifact at byte %d (got %d bytes, want %d); "+
			"a deliberate format change needs a version bump and -update", i, len(got), len(want))
	}
	// The golden artifact must also read back cleanly forever.
	snap, err := Decode(want)
	if err != nil {
		t.Fatalf("golden artifact no longer decodes: %v", err)
	}
	assertSnapshotsIdentical(t, testSnapshot(t), snap)
}
