package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
)

// crashPoint, when non-nil, runs after the temp file is durable but
// before the rename publishes it. Tests set it to simulate a process
// crash at the worst moment and assert that readers never observe a
// torn artifact. Always nil in production.
var crashPoint func()

// WriteFileAtomic publishes the rendered snapshot at path so that a
// reader — a concurrent eyeballserve reload, or anyone after a crash —
// sees either the complete previous artifact or the complete new one,
// never a prefix of the new bytes.
//
// The sequence is the standard crash-safe publish: render to a temp
// file in the destination directory, fsync the file, rename it over
// path (atomic within a filesystem), then fsync the directory so the
// rename itself is durable. A crash before the rename leaves the old
// artifact untouched (plus a stray .tmp file, which the next write
// ignores); a crash after it leaves the new artifact fully in place.
func WriteFileAtomic(path string, s *Snapshot) error {
	return WriteFileAtomicBytes(path, Encode(s))
}

// WriteFileAtomicBytes is WriteFileAtomic for pre-rendered bytes —
// the eyeballpipe publish path, which mangles the encoded artifact
// through the fault plan before it hits disk, uses this form.
func WriteFileAtomicBytes(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: creating temp artifact: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op once the rename has consumed it

	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: writing temp artifact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: syncing temp artifact: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: setting artifact mode: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: closing temp artifact: %w", err)
	}

	if crashPoint != nil {
		crashPoint()
	}

	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("snapshot: publishing artifact: %w", err)
	}
	// Make the rename durable: fsync the containing directory. Some
	// filesystems reject directory fsync; the rename is still atomic
	// for live readers, so that is not fatal.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
