package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestWriteFileAtomicRoundTrip: the happy path publishes a readable
// artifact with the expected bytes and mode, and leaves no temp debris.
func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.snap")
	snap := testSnapshot(t)
	if err := WriteFileAtomic(path, snap); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading published artifact: %v", err)
	}
	if !bytes.Equal(got, Encode(snap)) {
		t.Error("published bytes differ from Encode output")
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o644 {
		t.Errorf("artifact mode %v (err %v), want 0644", fi.Mode().Perm(), err)
	}
	assertNoTempFiles(t, dir)
}

// TestWriteFileAtomicTornWrite simulates a crash between rendering the
// temp file and the rename: the destination must still hold the old,
// fully valid artifact — never a prefix of the new one.
func TestWriteFileAtomicTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.snap")
	old := testSnapshot(t)
	old.Meta.Label = "old-generation"
	if err := WriteFileAtomic(path, old); err != nil {
		t.Fatalf("publishing old artifact: %v", err)
	}
	oldBytes := Encode(old)

	next := testSnapshot(t)
	next.Meta.Label = "next-generation"

	type crashed struct{}
	crashPoint = func() { panic(crashed{}) }
	defer func() { crashPoint = nil }()
	func() {
		defer func() {
			if r := recover(); r != (crashed{}) {
				t.Fatalf("unexpected panic %v", r)
			}
		}()
		_ = WriteFileAtomic(path, next)
		t.Error("crash point never fired")
	}()

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading artifact after simulated crash: %v", err)
	}
	if !bytes.Equal(got, oldBytes) {
		t.Fatal("artifact changed despite crashing before the rename")
	}
	if snap, err := ReadFile(path); err != nil {
		t.Fatalf("old artifact unreadable after crash: %v", err)
	} else if snap.Meta.Label != "old-generation" {
		t.Errorf("label %q, want the pre-crash artifact", snap.Meta.Label)
	}

	// Recovery: the next publish succeeds and replaces the artifact
	// whole, with the stray temp file from the crash left inert.
	crashPoint = nil
	if err := WriteFileAtomic(path, next); err != nil {
		t.Fatalf("re-publish after crash: %v", err)
	}
	if snap, err := ReadFile(path); err != nil || snap.Meta.Label != "next-generation" {
		t.Fatalf("re-published artifact: label %v err %v", snap.Meta.Label, err)
	}
}

// TestWriteFileAtomicNeverTorn hammers one path with writers while a
// reader decodes continuously: every read must yield a complete,
// checksum-valid artifact. With plain os.WriteFile this fails almost
// immediately (the reader catches a truncated file mid-write).
func TestWriteFileAtomicNeverTorn(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.snap")
	a := testSnapshot(t)
	a.Meta.Label = "gen-a"
	b := testSnapshot(t)
	b.Meta.Label = "gen-b-with-a-longer-label-so-sizes-differ"
	if err := WriteFileAtomic(path, a); err != nil {
		t.Fatalf("seeding artifact: %v", err)
	}

	const writes = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			s := a
			if i%2 == 1 {
				s = b
			}
			if err := WriteFileAtomic(path, s); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
	}()

	writerDone := waitDone(&wg)
	reads := 0
	for done := false; !done; {
		select {
		case <-writerDone:
			done = true
		default:
			snap, err := ReadFile(path)
			if err != nil {
				t.Fatalf("read %d observed a torn artifact: %v", reads, err)
			}
			if l := snap.Meta.Label; l != "gen-a" && l != "gen-b-with-a-longer-label-so-sizes-differ" {
				t.Fatalf("read %d observed an unknown artifact %q", reads, l)
			}
			reads++
		}
	}
	if reads == 0 {
		t.Log("writer finished before any read completed; atomicity unexercised this run")
	}
	assertNoTempFiles(t, dir)
}

// TestWriteFileDelegatesToAtomic pins the satellite contract: the
// long-standing WriteFile signature now publishes atomically, so no
// caller is left on the torn-write path.
func TestWriteFileDelegatesToAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.snap")
	fired := false
	crashPoint = func() { fired = true }
	defer func() { crashPoint = nil }()
	if err := WriteFile(path, testSnapshot(t)); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if !fired {
		t.Error("WriteFile did not route through the atomic publish path")
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if e.Name() != "out.snap" {
			t.Errorf("stray file after publish: %s", e.Name())
		}
	}
}

func waitDone(wg *sync.WaitGroup) <-chan struct{} {
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	return ch
}
