package snapshot

import (
	"bytes"
	"math"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/core"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/obs"
	"eyeballas/internal/p2p"
	"eyeballas/internal/pipeline"
)

// testSnapshot builds a small synthetic artifact exercising every
// format feature: multiple AS records with float edge cases (NaN, ±Inf,
// -0), empty and non-empty string fields, sparse per-app counters, a
// multi-stage funnel, streaming stats, and a nested-prefix LPM.
// Accepts a nil t (the fuzz seed corpus is built outside a T).
func testSnapshot(t testing.TB) *Snapshot {
	if t != nil {
		t.Helper()
	}
	f := obs.NewFunnel("pipeline")
	geoStage := f.Stage("geolocate").DeclareReasons("no_city_record", "garbage_coord", "high_geo_err")
	geoStage.In(1000)
	geoStage.Drop("no_city_record", 40)
	geoStage.Drop("high_geo_err", 60)
	geoStage.Out(900)
	cond := f.Stage("condition").DeclareReasons("small_as")
	cond.In(900)
	cond.Drop("small_as", 100)
	cond.Out(800)

	recA := &pipeline.ASRecord{
		ASN:   7,
		Users: 600,
		Samples: []core.Sample{
			{Loc: geo.Point{Lat: 45.4642, Lon: 9.19}, City: "Milan", State: "MI", Country: "IT", Region: gazetteer.EU, GeoErrKm: 12.5},
			{Loc: geo.Point{Lat: math.Copysign(0, -1), Lon: -180}, City: "Null Island W", Country: "XX", Region: gazetteer.Other, GeoErrKm: math.Inf(1)},
			{Loc: geo.Point{Lat: math.NaN(), Lon: math.NaN()}, Region: gazetteer.Other, GeoErrKm: math.NaN()},
		},
		PeersByApp:  map[p2p.App]int{p2p.Kad: 400, p2p.BitTorrent: 200},
		Class:       core.Classification{Level: astopo.LevelCity, Place: "Milan/IT", Share: 0.971},
		Region:      gazetteer.EU,
		P90GeoErrKm: 31.25,
	}
	recB := &pipeline.ASRecord{
		ASN:         9,
		Users:       200,
		Samples:     []core.Sample{{Loc: geo.Point{Lat: -33.87, Lon: 151.21}, City: "Sydney", Country: "AU", Region: gazetteer.OC}},
		PeersByApp:  map[p2p.App]int{p2p.Gnutella: 200},
		Class:       core.Classification{Level: astopo.LevelGlobal, Share: math.NaN()},
		Region:      gazetteer.OC,
		P90GeoErrKm: math.Inf(1),
	}
	recC := &pipeline.ASRecord{ASN: 4000000000, Users: 0, Class: core.Classification{Level: astopo.LevelCountry, Place: "AU"}, Region: gazetteer.OC}

	ds := &pipeline.Dataset{
		ASes:           map[astopo.ASN]*pipeline.ASRecord{7: recA, 9: recB, 4000000000: recC},
		Order:          []astopo.ASN{7, 9, 4000000000},
		Drops:          pipeline.Drops{NoCityRecord: 40, HighGeoErr: 60, SmallAS: 100, DupIP: 3},
		TotalPeers:     800,
		CrawledPeers:   1000,
		Funnel:         f,
		Degraded:       true,
		DegradedReason: "single-db fallback",
		Stream:         &pipeline.StreamStats{BatchSize: 4096, Batches: 12, MaxBatch: 4096, DedupEntries: 812, PeakLiveSamples: 800},
	}

	tbl := ipnet.NewTable[astopo.ASN]()
	for _, e := range []struct {
		cidr string
		asn  astopo.ASN
	}{
		{"10.0.0.0/8", 7},
		{"10.1.0.0/16", 9}, // nested inside 10/8
		{"10.1.2.0/24", 7}, // nested two deep
		{"192.168.0.0/16", 9},
		{"0.0.0.0/1", 4000000000},
	} {
		p, err := ipnet.ParsePrefix(e.cidr)
		if err != nil {
			panic(err) // fixed literals; also reachable with nil t from fuzz seeding
		}
		tbl.Insert(p, e.asn)
	}
	origins := bgp.NewOriginTableFromCompiled(tbl.Compile())

	return &Snapshot{
		Meta:    Meta{Seed: 42, Label: "test"},
		Dataset: ds,
		Origins: origins,
	}
}

// f64eq compares floats at the bit level (NaN == NaN, -0 != +0), the
// same identity the pipeline's determinism tests use.
func f64eq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// assertSnapshotsIdentical requires got to reproduce want bit for bit:
// every counter, every string, every Float64bits, the funnel ledger in
// order, and identical LPM answers across the address space.
func assertSnapshotsIdentical(t *testing.T, want, got *Snapshot) {
	t.Helper()
	if got.Meta != want.Meta {
		t.Errorf("meta: got %+v want %+v", got.Meta, want.Meta)
	}
	w, g := want.Dataset, got.Dataset
	if g.CrawledPeers != w.CrawledPeers || g.TotalPeers != w.TotalPeers {
		t.Errorf("peer totals: got (%d,%d) want (%d,%d)", g.CrawledPeers, g.TotalPeers, w.CrawledPeers, w.TotalPeers)
	}
	if g.Degraded != w.Degraded || g.DegradedReason != w.DegradedReason {
		t.Errorf("degraded: got (%v,%q) want (%v,%q)", g.Degraded, g.DegradedReason, w.Degraded, w.DegradedReason)
	}
	if g.Drops != w.Drops {
		t.Errorf("drops: got %+v want %+v", g.Drops, w.Drops)
	}
	if (g.Stream == nil) != (w.Stream == nil) {
		t.Fatalf("stream presence: got %v want %v", g.Stream != nil, w.Stream != nil)
	}
	if w.Stream != nil && *g.Stream != *w.Stream {
		t.Errorf("stream stats: got %+v want %+v", *g.Stream, *w.Stream)
	}

	// Funnel ledger: name, stage order, in/out, drop rows in order.
	if g.Funnel.Name() != w.Funnel.Name() {
		t.Errorf("funnel name: got %q want %q", g.Funnel.Name(), w.Funnel.Name())
	}
	ws, gs := w.Funnel.Stages(), g.Funnel.Stages()
	if len(gs) != len(ws) {
		t.Fatalf("funnel stages: got %d want %d", len(gs), len(ws))
	}
	for i := range ws {
		if gs[i].Name() != ws[i].Name() || gs[i].InCount() != ws[i].InCount() || gs[i].OutCount() != ws[i].OutCount() {
			t.Errorf("stage %d: got (%s,%d,%d) want (%s,%d,%d)", i,
				gs[i].Name(), gs[i].InCount(), gs[i].OutCount(),
				ws[i].Name(), ws[i].InCount(), ws[i].OutCount())
		}
	}
	wd, gd := w.Funnel.Drops(), g.Funnel.Drops()
	if len(gd) != len(wd) {
		t.Fatalf("funnel drop rows: got %d want %d", len(gd), len(wd))
	}
	for i := range wd {
		if gd[i] != wd[i] {
			t.Errorf("drop row %d: got %+v want %+v", i, gd[i], wd[i])
		}
	}

	// Per-AS records.
	if len(g.Order) != len(w.Order) {
		t.Fatalf("order: got %d ASes want %d", len(g.Order), len(w.Order))
	}
	for i, asn := range w.Order {
		if g.Order[i] != asn {
			t.Fatalf("order[%d]: got AS%d want AS%d", i, g.Order[i], asn)
		}
		wr, gr := w.ASes[asn], g.ASes[asn]
		if gr == nil {
			t.Fatalf("AS%d missing from read-back map", asn)
		}
		if gr.ASN != wr.ASN || gr.Users != wr.Users {
			t.Errorf("AS%d identity: got (%d,%d) want (%d,%d)", asn, gr.ASN, gr.Users, wr.ASN, wr.Users)
		}
		if !f64eq(gr.P90GeoErrKm, wr.P90GeoErrKm) {
			t.Errorf("AS%d p90: got %v want %v", asn, gr.P90GeoErrKm, wr.P90GeoErrKm)
		}
		if gr.Class.Level != wr.Class.Level || gr.Class.Place != wr.Class.Place || !f64eq(gr.Class.Share, wr.Class.Share) {
			t.Errorf("AS%d class: got %+v want %+v", asn, gr.Class, wr.Class)
		}
		if gr.Region != wr.Region {
			t.Errorf("AS%d region: got %q want %q", asn, gr.Region, wr.Region)
		}
		if len(gr.PeersByApp) != len(wr.PeersByApp) {
			t.Errorf("AS%d apps: got %d want %d", asn, len(gr.PeersByApp), len(wr.PeersByApp))
		}
		for app, n := range wr.PeersByApp {
			if gr.PeersByApp[app] != n {
				t.Errorf("AS%d %s peers: got %d want %d", asn, app, gr.PeersByApp[app], n)
			}
		}
		if len(gr.Samples) != len(wr.Samples) {
			t.Fatalf("AS%d samples: got %d want %d", asn, len(gr.Samples), len(wr.Samples))
		}
		for j, wsamp := range wr.Samples {
			gsamp := gr.Samples[j]
			if !f64eq(gsamp.Loc.Lat, wsamp.Loc.Lat) || !f64eq(gsamp.Loc.Lon, wsamp.Loc.Lon) || !f64eq(gsamp.GeoErrKm, wsamp.GeoErrKm) {
				t.Errorf("AS%d sample %d floats: got %+v want %+v", asn, j, gsamp, wsamp)
			}
			if gsamp.City != wsamp.City || gsamp.State != wsamp.State || gsamp.Country != wsamp.Country || gsamp.Region != wsamp.Region {
				t.Errorf("AS%d sample %d labels: got %+v want %+v", asn, j, gsamp, wsamp)
			}
		}
	}

	// Origin table: same presence, same prefixes, same answers.
	if (got.Origins == nil) != (want.Origins == nil) {
		t.Fatalf("origins presence: got %v want %v", got.Origins != nil, want.Origins != nil)
	}
	if want.Origins == nil {
		return
	}
	wc, gc := want.Origins.Compiled(), got.Origins.Compiled()
	if gc.Len() != wc.Len() || gc.Segments() != wc.Segments() {
		t.Fatalf("compiled shape: got (%d,%d) want (%d,%d)", gc.Len(), gc.Segments(), wc.Len(), wc.Segments())
	}
	wp, wv, wst, wsi := wc.Dump()
	gp, gv, gst, gsi := gc.Dump()
	for i := range wp {
		if gp[i] != wp[i] || gv[i] != wv[i] {
			t.Errorf("prefix %d: got (%s,%d) want (%s,%d)", i, gp[i], gv[i], wp[i], wv[i])
		}
	}
	for k := range wst {
		if gst[k] != wst[k] || gsi[k] != wsi[k] {
			t.Errorf("segment %d: got (%s,%d) want (%s,%d)", k, gst[k], gsi[k], wst[k], wsi[k])
		}
	}
	// Probe lookups across the space, including segment boundaries.
	probes := []ipnet.Addr{0, 1, ipnet.MakeAddr(9, 255, 255, 255), ipnet.MakeAddr(10, 0, 0, 0),
		ipnet.MakeAddr(10, 1, 2, 3), ipnet.MakeAddr(10, 1, 3, 0), ipnet.MakeAddr(127, 255, 255, 255),
		ipnet.MakeAddr(128, 0, 0, 0), ipnet.MakeAddr(192, 168, 4, 4), ^ipnet.Addr(0)}
	for _, a := range probes {
		wasn, wok := want.Origins.OriginOf(a)
		gasn, gok := got.Origins.OriginOf(a)
		if wasn != gasn || wok != gok {
			t.Errorf("OriginOf(%s): got (%d,%v) want (%d,%v)", a, gasn, gok, wasn, wok)
		}
	}
}

func TestRoundTripIdentity(t *testing.T) {
	snap := testSnapshot(t)
	data := Encode(snap)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	assertSnapshotsIdentical(t, snap, got)
}

func TestEncodeDeterministic(t *testing.T) {
	// Same contents → same bytes, including after a round trip (so no
	// map-order or rebuild artifact leaks into the encoding).
	a := Encode(testSnapshot(t))
	b := Encode(testSnapshot(t))
	if !bytes.Equal(a, b) {
		t.Fatalf("two encodes of equal snapshots differ (%d vs %d bytes)", len(a), len(b))
	}
	decoded, err := Decode(a)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	c := Encode(decoded)
	if !bytes.Equal(a, c) {
		t.Fatalf("re-encoding a decoded snapshot changed the bytes (%d vs %d)", len(a), len(c))
	}
}

func TestRoundTripWithoutOptionalSections(t *testing.T) {
	snap := testSnapshot(t)
	snap.Origins = nil
	snap.Dataset.Stream = nil
	snap.Dataset.Funnel = nil
	data := Encode(snap)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Origins != nil {
		t.Errorf("origins: got non-nil for dataset-only artifact")
	}
	if got.Dataset.Stream != nil || got.Dataset.Funnel != nil {
		t.Errorf("optional dataset parts resurrected: stream=%v funnel=%v", got.Dataset.Stream, got.Dataset.Funnel)
	}
	if got.Dataset.TotalPeers != snap.Dataset.TotalPeers || len(got.Dataset.Order) != len(snap.Dataset.Order) {
		t.Errorf("dataset core fields lost")
	}
}

func TestWriteReadFile(t *testing.T) {
	snap := testSnapshot(t)
	path := t.TempDir() + "/a.snap"
	if err := WriteFile(path, snap); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	assertSnapshotsIdentical(t, snap, got)
}

// TestRoundTripPipelineDataset runs the real pipeline on a tiny world
// and proves the artifact reproduces its dataset and origin table —
// the property the serving layer's bit-identical guarantee rests on.
func TestRoundTripPipelineDataset(t *testing.T) {
	w, err := astopo.Generate(astopo.SmallConfig(7))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	ds, _, origins, err := pipeline.RunExport(nil, w, p2p.DefaultConfig(), pipeline.DefaultConfig(), 7)
	if err != nil {
		t.Fatalf("RunExport: %v", err)
	}
	snap := &Snapshot{Meta: Meta{Seed: 7, Label: "pipeline"}, Dataset: ds, Origins: origins}
	got, err := Decode(Encode(snap))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	assertSnapshotsIdentical(t, snap, got)
}
