package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"eyeballas/internal/faults"
)

// TestRejectTruncation cuts the artifact at every byte boundary and
// requires a typed error — never a panic, never a successful read of a
// partial artifact.
func TestRejectTruncation(t *testing.T) {
	data := Encode(testSnapshot(t))
	for n := 0; n < len(data); n++ {
		_, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("truncation at %d of %d accepted", n, len(data))
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("truncation at %d: error %v is not a *FormatError", n, err)
		}
	}
}

// TestRejectBitFlips flips every byte of the artifact (one at a time)
// and requires rejection with a typed error. Every byte of the file is
// covered by either a section CRC or the whole-file CRC, so no single
// corruption can go unnoticed.
func TestRejectBitFlips(t *testing.T) {
	data := Encode(testSnapshot(t))
	mut := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		copy(mut, data)
		mut[i] ^= 0x5A
		_, err := Decode(mut)
		if err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("flip at byte %d: error %v is not a *FormatError", i, err)
		}
	}
}

func TestRejectBadMagic(t *testing.T) {
	data := Encode(testSnapshot(t))
	data[0] = 'X'
	_, err := Decode(data)
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
	if _, err := Decode([]byte("not a snapshot at all")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("foreign bytes: got %v, want ErrBadMagic", err)
	}
	// A prefix of the magic is truncation, not a foreign file.
	if _, err := Decode([]byte("eyeballas-")); !errors.Is(err, ErrTruncated) {
		t.Fatalf("magic prefix: got %v, want ErrTruncated", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty input: got %v, want ErrTruncated", err)
	}
}

func TestRejectVersionSkew(t *testing.T) {
	data := Encode(testSnapshot(t))
	data[len(magic)] = Version + 1
	_, err := Decode(data)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
	var fe *FormatError
	if !errors.As(err, &fe) || fe.Offset != len(magic) {
		t.Fatalf("version error should carry the version byte offset, got %+v", fe)
	}
	data[len(magic)] = 0
	if _, err := Decode(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("version 0: got %v, want ErrVersion", err)
	}
}

func TestRejectChecksumDamage(t *testing.T) {
	// Flip the first payload byte of the dataset section (skipping the
	// meta section by its declared length) and re-stamp the whole-file
	// CRC, so the damage can only be caught by the section checksum.
	data := Encode(testSnapshot(t))
	off := len(magic) + 1
	metaLen := binary.LittleEndian.Uint64(data[off+1:])
	dsPayload := off + 1 + 8 + int(metaLen) + 4 + 1 + 8
	data[dsPayload] ^= 0xFF
	restampFileCRC(data)
	_, err := Decode(data)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("payload damage: got %v, want ErrChecksum", err)
	}
}

func TestRejectTrailingGarbage(t *testing.T) {
	data := Encode(testSnapshot(t))
	data = append(data, "extra"...)
	_, err := Decode(data)
	if err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// The garbage lands where the file CRC is expected, so it surfaces
	// as a checksum mismatch — the important part is typed rejection.
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("trailing garbage: error %v is not a *FormatError", err)
	}
}

// restampFileCRC recomputes the trailing whole-file checksum (test
// helper for constructing artifacts whose damage hides from it).
func restampFileCRC(data []byte) {
	c := crc32.Checksum(data[:len(data)-4], castagnoli)
	data[len(data)-4] = byte(c)
	data[len(data)-3] = byte(c >> 8)
	data[len(data)-2] = byte(c >> 16)
	data[len(data)-1] = byte(c >> 24)
}

// TestMangleDeterministicAndRejected drives the faults.SnapCorrupt
// point the way eyeballpipe does: the same plan mangles the same bytes
// the same way, a mangled artifact is always rejected with a typed
// error, and a nil injector leaves the artifact untouched.
func TestMangleDeterministicAndRejected(t *testing.T) {
	clean := Encode(testSnapshot(t))
	plan := faults.NewPlan(99)
	if err := plan.Set(faults.SnapCorrupt, 0.01); err != nil {
		t.Fatalf("Set: %v", err)
	}

	a := append([]byte(nil), clean...)
	b := append([]byte(nil), clean...)
	fa := Mangle(a, plan.Injector(faults.SnapCorrupt))
	fb := Mangle(b, plan.Injector(faults.SnapCorrupt))
	if fa == 0 {
		t.Fatalf("rate 0.01 over %d bytes flipped nothing", len(clean))
	}
	if fa != fb || !bytes.Equal(a, b) {
		t.Fatalf("mangle not deterministic: %d vs %d flips", fa, fb)
	}
	if bytes.Equal(a, clean) {
		t.Fatal("mangle reported flips but bytes unchanged")
	}
	_, err := Decode(a)
	if err == nil {
		t.Fatal("mangled artifact accepted")
	}
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("mangled artifact: error %v is not a *FormatError", err)
	}

	c := append([]byte(nil), clean...)
	if n := Mangle(c, nil); n != 0 || !bytes.Equal(c, clean) {
		t.Fatalf("nil injector changed the artifact (%d flips)", n)
	}
}

func TestFormatErrorRendering(t *testing.T) {
	fe := &FormatError{Reason: ErrChecksum, Offset: 123, Detail: "dataset section checksum 0000abcd, computed 0000ef01"}
	if !errors.Is(fe, ErrChecksum) {
		t.Fatal("errors.Is through FormatError failed")
	}
	msg := fe.Error()
	for _, want := range []string{"checksum", "123", "dataset"} {
		if !bytes.Contains([]byte(msg), []byte(want)) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
}
