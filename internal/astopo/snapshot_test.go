package astopo

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	w1 := genSmall(t, 121)
	var buf bytes.Buffer
	if err := w1.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if w2.Seed != w1.Seed {
		t.Errorf("seed %d != %d", w2.Seed, w1.Seed)
	}
	if len(w2.ASNs()) != len(w1.ASNs()) {
		t.Fatalf("AS counts differ: %d vs %d", len(w2.ASNs()), len(w1.ASNs()))
	}
	for i, n := range w1.ASNs() {
		if w2.ASNs()[i] != n {
			t.Fatalf("AS order differs at %d", i)
		}
		a1, a2 := w1.AS(n), w2.AS(n)
		if a1.Name != a2.Name || a1.Kind != a2.Kind || a1.Level != a2.Level ||
			a1.Region != a2.Region || a1.Country != a2.Country ||
			a1.Customers != a2.Customers || a1.PublishesPoPs != a2.PublishesPoPs {
			t.Fatalf("AS %d scalar fields differ:\n%+v\n%+v", n, a1, a2)
		}
		if len(a1.Prefixes) != len(a2.Prefixes) || len(a1.PoPs) != len(a2.PoPs) {
			t.Fatalf("AS %d prefix/PoP counts differ", n)
		}
		for j := range a1.Prefixes {
			if a1.Prefixes[j] != a2.Prefixes[j] {
				t.Fatalf("AS %d prefix %d differs", n, j)
			}
		}
		for j := range a1.PoPs {
			p1, p2 := a1.PoPs[j], a2.PoPs[j]
			if p1.City.Name != p2.City.Name || p1.Share != p2.Share || p1.ServesUsers != p2.ServesUsers {
				t.Fatalf("AS %d PoP %d differs: %+v vs %+v", n, j, p1, p2)
			}
			if p1.City.Loc != p2.City.Loc {
				t.Fatalf("AS %d PoP %d city not resolved against gazetteer", n, j)
			}
		}
		// Provider links preserved.
		pr1, pr2 := w1.Providers(n), w2.Providers(n)
		if len(pr1) != len(pr2) {
			t.Fatalf("AS %d provider counts differ", n)
		}
		for j := range pr1 {
			if pr1[j] != pr2[j] {
				t.Fatalf("AS %d provider %d differs", n, j)
			}
		}
	}
	if len(w2.Peerings()) != len(w1.Peerings()) {
		t.Fatalf("peering counts differ: %d vs %d", len(w2.Peerings()), len(w1.Peerings()))
	}
	if len(w2.IXPs()) != len(w1.IXPs()) {
		t.Fatalf("IXP counts differ")
	}
	for i, ix1 := range w1.IXPs() {
		ix2 := w2.IXPs()[i]
		if ix1.ID != ix2.ID || ix1.Name != ix2.Name || len(ix1.Members) != len(ix2.Members) {
			t.Fatalf("IXP %d differs", ix1.ID)
		}
	}
	// Case study preserved.
	cs1, cs2 := w1.CaseStudy(), w2.CaseStudy()
	if cs1 == nil || cs2 == nil || *cs1 != *cs2 {
		t.Fatalf("case study lost: %+v vs %+v", cs1, cs2)
	}
	// Zip index reconstructed (deterministic in seed).
	if w2.Zips.Len() != w1.Zips.Len() {
		t.Errorf("zip index sizes differ: %d vs %d", w2.Zips.Len(), w1.Zips.Len())
	}
	// Stats agree on every scalar.
	s1, s2 := w1.Stats(), w2.Stats()
	if s1.ASes != s2.ASes || s1.Eyeballs != s2.Eyeballs || s1.Peerings != s2.Peerings ||
		s1.ProviderLinks != s2.ProviderLinks || s1.IXPs != s2.IXPs {
		t.Errorf("stats differ: %+v vs %+v", s1, s2)
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader(
		`{"version":1,"seed":1,"ases":[{"asn":7,"pops":[{"city":"Atlantis","country":"XX"}]}]}`)); err == nil {
		t.Error("unknown city accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader(
		`{"version":1,"seed":1,"providers":[[1,2]]}`)); err == nil {
		t.Error("dangling provider link accepted")
	}
}
