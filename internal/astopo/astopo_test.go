package astopo

import (
	"math"
	"testing"

	"eyeballas/internal/gazetteer"
)

func genSmall(t *testing.T, seed uint64) *World {
	t.Helper()
	w, err := Generate(SmallConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := genSmall(t, 42)
	w2 := genSmall(t, 42)
	if len(w1.ASNs()) != len(w2.ASNs()) {
		t.Fatalf("AS counts differ: %d vs %d", len(w1.ASNs()), len(w2.ASNs()))
	}
	for i, n := range w1.ASNs() {
		a1, a2 := w1.AS(n), w2.AS(w2.ASNs()[i])
		if a1.ASN != a2.ASN || a1.Name != a2.Name || a1.Customers != a2.Customers ||
			len(a1.PoPs) != len(a2.PoPs) {
			t.Fatalf("AS %d differs between runs: %+v vs %+v", n, a1, a2)
		}
	}
	if len(w1.Peerings()) != len(w2.Peerings()) {
		t.Error("peering counts differ")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	w1 := genSmall(t, 1)
	w2 := genSmall(t, 2)
	same := 0
	n := min(len(w1.ASNs()), len(w2.ASNs()))
	for i := 0; i < n; i++ {
		a1, a2 := w1.AS(w1.ASNs()[i]), w2.AS(w2.ASNs()[i])
		if a1.Customers == a2.Customers && len(a1.PoPs) == len(a2.PoPs) {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical worlds")
	}
}

func TestGenerateQuotas(t *testing.T) {
	w := genSmall(t, 3)
	s := w.Stats()
	cfg := SmallConfig(3)
	// The planted case study adds two Italian (EU) eyeballs on top of the
	// region quotas.
	extra := map[gazetteer.Region]int{gazetteer.EU: 2}
	for _, r := range []gazetteer.Region{gazetteer.NA, gazetteer.EU, gazetteer.AS} {
		want := cfg.EyeballsPerRegion[r] + extra[r]
		if s.ByRegion[r] != want {
			t.Errorf("region %s: %d eyeballs, want %d", r, s.ByRegion[r], want)
		}
	}
	if s.Tier1s != cfg.NTier1 {
		t.Errorf("tier1s = %d, want %d", s.Tier1s, cfg.NTier1)
	}
	if s.Transits == 0 || s.IXPs == 0 || s.Peerings == 0 {
		t.Errorf("missing substrate: %+v", s)
	}
}

func TestASInvariants(t *testing.T) {
	w := genSmall(t, 4)
	for _, a := range w.ASes() {
		if len(a.PoPs) == 0 {
			t.Errorf("AS %d (%s) has no PoPs", a.ASN, a.Name)
		}
		if len(a.Prefixes) == 0 {
			t.Errorf("AS %d has no prefixes", a.ASN)
		}
		if a.Kind == KindEyeball {
			if a.Customers < 1000 {
				t.Errorf("eyeball %d has %d customers", a.ASN, a.Customers)
			}
			// User-serving shares sum to 1.
			sum := 0.0
			users := 0
			for _, p := range a.PoPs {
				if p.ServesUsers {
					users++
					sum += p.Share
				} else if p.Share != 0 {
					t.Errorf("AS %d: infra PoP with share %v", a.ASN, p.Share)
				}
			}
			if users == 0 {
				t.Errorf("eyeball %d has no user-serving PoPs", a.ASN)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("AS %d shares sum to %v", a.ASN, sum)
			}
			// Level consistency: city-level user PoPs within one metro;
			// all user PoPs in home country.
			for _, p := range a.UserPoPs() {
				if p.City.Country != a.Country {
					t.Errorf("AS %d (%s): user PoP in %s", a.ASN, a.Country, p.City.Country)
				}
			}
			if a.Level == LevelState {
				st := a.UserPoPs()[0].City.State
				for _, p := range a.UserPoPs() {
					if p.City.State != st {
						t.Errorf("state-level AS %d spans states %s and %s", a.ASN, st, p.City.State)
					}
				}
			}
		}
	}
}

func TestPrefixesDisjoint(t *testing.T) {
	w := genSmall(t, 5)
	type owned struct {
		asn ASN
		p   string
	}
	seen := map[string]ASN{}
	for _, a := range w.ASes() {
		for _, p := range a.Prefixes {
			if prev, dup := seen[p.String()]; dup {
				t.Fatalf("prefix %v owned by both %d and %d", p, prev, a.ASN)
			}
			seen[p.String()] = a.ASN
		}
	}
}

func TestProviderGraphAcyclicToTier1(t *testing.T) {
	// Following provider links upward from any AS must reach a tier-1
	// without revisiting a node (no provider cycles).
	w := genSmall(t, 6)
	for _, a := range w.ASes() {
		if a.Kind == KindTier1 {
			if len(w.Providers(a.ASN)) != 0 {
				t.Errorf("tier-1 %d has providers", a.ASN)
			}
			continue
		}
		// BFS up.
		visited := map[ASN]bool{a.ASN: true}
		frontier := []ASN{a.ASN}
		reached := false
		for len(frontier) > 0 && !reached {
			var next []ASN
			for _, n := range frontier {
				for _, p := range w.Providers(n) {
					if w.AS(p).Kind == KindTier1 {
						reached = true
					}
					if !visited[p] {
						visited[p] = true
						next = append(next, p)
					}
				}
			}
			frontier = next
		}
		if !reached {
			t.Errorf("AS %d cannot reach a tier-1 via providers", a.ASN)
		}
	}
}

func TestPeeringInvariants(t *testing.T) {
	w := genSmall(t, 7)
	for _, p := range w.Peerings() {
		if p.A == p.B {
			t.Fatalf("self peering %v", p)
		}
		if p.A > p.B {
			t.Fatalf("unnormalized peering %v", p)
		}
		if w.AS(p.A) == nil || w.AS(p.B) == nil {
			t.Fatalf("peering with unknown AS %v", p)
		}
		if p.IXP != 0 {
			if !w.MemberOf(p.IXP, p.A) || !w.MemberOf(p.IXP, p.B) {
				t.Errorf("peering %v at IXP lacking membership", p)
			}
		}
		// No peering between customer and provider.
		for _, pr := range w.Providers(p.A) {
			if pr == p.B {
				t.Errorf("peering %v duplicates provider link", p)
			}
		}
	}
}

func TestIXPMembersExist(t *testing.T) {
	w := genSmall(t, 8)
	for _, ix := range w.IXPs() {
		seen := map[ASN]bool{}
		for _, m := range ix.Members {
			if w.AS(m) == nil {
				t.Errorf("IXP %s has unknown member %d", ix.Name, m)
			}
			if seen[m] {
				t.Errorf("IXP %s lists member %d twice", ix.Name, m)
			}
			seen[m] = true
		}
	}
}

func TestCaseStudyPlanted(t *testing.T) {
	w := genSmall(t, 9)
	cs := w.CaseStudy()
	if cs == nil {
		t.Fatal("case study not planted")
	}
	subject := w.AS(cs.Subject)
	if subject == nil || subject.Level != LevelCity || subject.Country != "IT" {
		t.Fatalf("subject AS malformed: %+v", subject)
	}
	if subject.Customers != 3000 {
		t.Errorf("subject customers = %d, want 3000", subject.Customers)
	}
	if len(subject.PoPs) != 1 || subject.PoPs[0].City.Name != "Rome" {
		t.Errorf("subject PoPs = %+v", subject.PoPs)
	}
	provs := w.Providers(cs.Subject)
	if len(provs) != 5 {
		t.Fatalf("subject has %d providers, want 5", len(provs))
	}
	want := map[ASN]bool{cs.NationalISP: true, cs.SecondNational: true, cs.GlobalA: true, cs.GlobalB: true, cs.Legacy: true}
	for _, p := range provs {
		if !want[p] {
			t.Errorf("unexpected provider %d", p)
		}
	}
	// Remote-IXP-only membership.
	if w.MemberOf(cs.LocalIXP, cs.Subject) {
		t.Error("subject is a member of the local IXP; the §6 point is that it is not")
	}
	if !w.MemberOf(cs.RemoteIXP, cs.Subject) {
		t.Error("subject is not a member of the remote IXP")
	}
	// The two Milan-only peers are not at the local IXP (paper: ASDASD
	// and ITGate are not NaMEX members).
	if w.MemberOf(cs.LocalIXP, cs.PeerB) || w.MemberOf(cs.LocalIXP, cs.PeerC) {
		t.Error("Milan-only peers are members of the local IXP")
	}
	if !w.MemberOf(cs.LocalIXP, cs.Academic) || !w.MemberOf(cs.RemoteIXP, cs.Academic) {
		t.Error("academic peer should be at both IXPs")
	}
	// Three peerings at the remote IXP.
	peers := 0
	for _, p := range w.Peers(cs.Subject) {
		if p.IXP == cs.RemoteIXP {
			peers++
		}
	}
	if peers != 3 {
		t.Errorf("subject has %d remote-IXP peerings, want 3", peers)
	}
	// The national ISP covers Rome among its PoPs.
	if !hasPoPIn(w.AS(cs.NationalISP), subject.PoPs[0].City) {
		t.Error("national ISP has no Rome PoP")
	}
}

func TestGenerateWithoutCaseStudy(t *testing.T) {
	cfg := SmallConfig(10)
	cfg.PlantCaseStudy = false
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.CaseStudy() != nil {
		t.Error("case study planted despite PlantCaseStudy=false")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.EyeballsPerRegion = nil },
		func(c *Config) { c.NTier1 = 1 },
		func(c *Config) { c.CustomerMin = 0 },
		func(c *Config) { c.CustomerCap = 10 },
		func(c *Config) { c.UpstreamMax = 0 },
		func(c *Config) { c.LevelMix[gazetteer.NA] = [3]float64{0, 0, 0} },
	}
	for i, mutate := range bad {
		cfg := SmallConfig(1)
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStats(t *testing.T) {
	w := genSmall(t, 11)
	s := w.Stats()
	if s.ASes != len(w.ASNs()) {
		t.Errorf("Stats.ASes = %d, want %d", s.ASes, len(w.ASNs()))
	}
	sum := s.Eyeballs + s.Transits + s.Tier1s + s.Contents
	if sum != s.ASes {
		t.Errorf("kind counts %d != total %d", sum, s.ASes)
	}
	if s.ProviderLinks == 0 {
		t.Error("no provider links")
	}
}

func TestPublishersExist(t *testing.T) {
	// The §5 reference dataset needs publishing ASes; with ~60 eyeballs
	// and PublishProb≈0.067·3 on non-city ASes this can be sparse, so use
	// the default config scaled check over several seeds.
	total := 0
	for seed := uint64(0); seed < 3; seed++ {
		w := genSmall(t, seed)
		for _, a := range w.Eyeballs() {
			if a.PublishesPoPs {
				total++
				if a.Level == LevelCity {
					t.Errorf("city-level AS %d publishes PoPs", a.ASN)
				}
			}
		}
	}
	if total == 0 {
		t.Error("no publishing ASes in 3 small worlds")
	}
}

func TestLevelMixShape(t *testing.T) {
	// With the default Table 1 mix, Europe must be country-heavy and Asia
	// city-heavy. Use a bigger world for stable proportions.
	cfg := DefaultConfig(12)
	cfg.EyeballsPerRegion = map[gazetteer.Region]int{gazetteer.EU: 120, gazetteer.AS: 120, gazetteer.NA: 120}
	cfg.ContentPerRegion = nil
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := func(r gazetteer.Region, l Level) int {
		n := 0
		for _, a := range w.Eyeballs() {
			if a.Region == r && a.Level == l {
				n++
			}
		}
		return n
	}
	if count(gazetteer.EU, LevelCountry) <= count(gazetteer.EU, LevelCity) {
		t.Error("EU should be country-heavy")
	}
	if count(gazetteer.AS, LevelCity) <= count(gazetteer.AS, LevelState) {
		t.Error("AS should have more city than state level")
	}
	if count(gazetteer.NA, LevelState) <= count(gazetteer.NA, LevelCity) {
		t.Error("NA should be state-heavy")
	}
}

func TestPaperConfigValid(t *testing.T) {
	cfg := PaperConfig(1)
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range cfg.EyeballsPerRegion {
		total += n
	}
	if total != 1233 {
		t.Errorf("paper config totals %d eyeballs, want 1233", total)
	}
	if cfg.EyeballsPerRegion[gazetteer.NA] != 327 ||
		cfg.EyeballsPerRegion[gazetteer.EU] != 428 ||
		cfg.EyeballsPerRegion[gazetteer.AS] != 286 {
		t.Errorf("paper config regional quotas wrong: %v", cfg.EyeballsPerRegion)
	}
}
