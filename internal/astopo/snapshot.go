package astopo

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"eyeballas/internal/gazetteer"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/rng"
)

// World snapshots.
//
// A world is deterministic in its seed, but regenerating one still costs
// CPU and, more importantly, a snapshot decouples downstream tools from
// the generator version: a saved world re-loads bit-identically even if
// generator heuristics later change. The snapshot carries everything the
// measurement simulators consume; the gazetteer and zip index are
// reconstructed from the embedded data plus the saved seed (they are
// deterministic in it).

// snapshotVersion guards format evolution.
const snapshotVersion = 1

type snapshot struct {
	Version int    `json:"version"`
	Seed    uint64 `json:"seed"`

	ASes      []snapAS      `json:"ases"`
	IXPs      []snapIXP     `json:"ixps"`
	Providers [][2]int      `json:"providers"` // [customer, provider]
	Peerings  []snapPeering `json:"peerings"`
	CaseStudy *snapCase     `json:"case_study,omitempty"`
}

type snapAS struct {
	ASN       int       `json:"asn"`
	Name      string    `json:"name"`
	Kind      int       `json:"kind"`
	Level     int       `json:"level"`
	Region    string    `json:"region"`
	Country   string    `json:"country,omitempty"`
	Customers int       `json:"customers,omitempty"`
	Publishes bool      `json:"publishes,omitempty"`
	Prefixes  []string  `json:"prefixes"`
	PoPs      []snapPoP `json:"pops"`
}

type snapPoP struct {
	City    string  `json:"city"`
	Country string  `json:"country"`
	Share   float64 `json:"share,omitempty"`
	Serves  bool    `json:"serves"`
}

type snapIXP struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	City    string `json:"city"`
	Country string `json:"country"`
	Members []int  `json:"members"`
}

type snapPeering struct {
	A   int `json:"a"`
	B   int `json:"b"`
	IXP int `json:"ixp,omitempty"`
}

type snapCase struct {
	Subject, NationalISP, SecondNational int
	GlobalA, GlobalB, Legacy             int
	Academic, PeerB, PeerC               int
	LocalIXP, RemoteIXP                  int
}

// WriteSnapshot serializes the world.
func (w *World) WriteSnapshot(out io.Writer) error {
	s := snapshot{Version: snapshotVersion, Seed: w.Seed}
	for _, a := range w.ASes() {
		sa := snapAS{
			ASN:       int(a.ASN),
			Name:      a.Name,
			Kind:      int(a.Kind),
			Level:     int(a.Level),
			Region:    string(a.Region),
			Country:   a.Country,
			Customers: a.Customers,
			Publishes: a.PublishesPoPs,
		}
		for _, p := range a.Prefixes {
			sa.Prefixes = append(sa.Prefixes, p.String())
		}
		for _, p := range a.PoPs {
			sa.PoPs = append(sa.PoPs, snapPoP{
				City: p.City.Name, Country: p.City.Country,
				Share: p.Share, Serves: p.ServesUsers,
			})
		}
		s.ASes = append(s.ASes, sa)
	}
	for _, ix := range w.IXPs() {
		si := snapIXP{ID: int(ix.ID), Name: ix.Name, City: ix.City.Name, Country: ix.City.Country}
		for _, m := range ix.Members {
			si.Members = append(si.Members, int(m))
		}
		s.IXPs = append(s.IXPs, si)
	}
	for _, a := range w.ASNs() {
		for _, p := range w.Providers(a) {
			s.Providers = append(s.Providers, [2]int{int(a), int(p)})
		}
	}
	for _, p := range w.Peerings() {
		s.Peerings = append(s.Peerings, snapPeering{A: int(p.A), B: int(p.B), IXP: int(p.IXP)})
	}
	if cs := w.caseStudy; cs != nil {
		s.CaseStudy = &snapCase{
			Subject: int(cs.Subject), NationalISP: int(cs.NationalISP), SecondNational: int(cs.SecondNational),
			GlobalA: int(cs.GlobalA), GlobalB: int(cs.GlobalB), Legacy: int(cs.Legacy),
			Academic: int(cs.Academic), PeerB: int(cs.PeerB), PeerC: int(cs.PeerC),
			LocalIXP: int(cs.LocalIXP), RemoteIXP: int(cs.RemoteIXP),
		}
	}
	bw := bufio.NewWriter(out)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(&s); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSnapshot reconstructs a world from a snapshot. City references are
// resolved against the embedded gazetteer; unknown cities are an error
// (snapshots are tied to the library's geography).
func ReadSnapshot(in io.Reader) (*World, error) {
	var s snapshot
	dec := json.NewDecoder(bufio.NewReader(in))
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("astopo: decoding snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("astopo: snapshot version %d unsupported (want %d)", s.Version, snapshotVersion)
	}
	gaz := gazetteer.Default()
	zips := gazetteer.SynthesizeZips(gaz, gazetteer.DefaultZipPlan(), rng.New(s.Seed).Split("zips"))
	w := newWorld(s.Seed, gaz, gazetteer.NewZipIndex(zips))

	city := func(name, country string) (gazetteer.City, error) {
		c, ok := gaz.Find(name, country)
		if !ok {
			return gazetteer.City{}, fmt.Errorf("astopo: snapshot references unknown city %s/%s", name, country)
		}
		return c, nil
	}

	for _, sa := range s.ASes {
		a := &AS{
			ASN:           ASN(sa.ASN),
			Name:          sa.Name,
			Kind:          Kind(sa.Kind),
			Level:         Level(sa.Level),
			Region:        gazetteer.Region(sa.Region),
			Country:       sa.Country,
			Customers:     sa.Customers,
			PublishesPoPs: sa.Publishes,
		}
		for _, ps := range sa.Prefixes {
			p, err := ipnet.ParsePrefix(ps)
			if err != nil {
				return nil, fmt.Errorf("astopo: snapshot AS %d: %w", sa.ASN, err)
			}
			a.Prefixes = append(a.Prefixes, p)
		}
		for _, pp := range sa.PoPs {
			c, err := city(pp.City, pp.Country)
			if err != nil {
				return nil, err
			}
			a.PoPs = append(a.PoPs, PoP{City: c, Share: pp.Share, ServesUsers: pp.Serves})
		}
		w.addAS(a)
	}
	for _, si := range s.IXPs {
		c, err := city(si.City, si.Country)
		if err != nil {
			return nil, err
		}
		ix := &IXP{ID: IXPID(si.ID), Name: si.Name, City: c}
		for _, m := range si.Members {
			ix.Members = append(ix.Members, ASN(m))
		}
		w.addIXP(ix)
	}
	for _, pr := range s.Providers {
		if w.AS(ASN(pr[0])) == nil || w.AS(ASN(pr[1])) == nil {
			return nil, fmt.Errorf("astopo: snapshot provider link references unknown AS %v", pr)
		}
		w.addProviderLink(ASN(pr[0]), ASN(pr[1]))
	}
	for _, pe := range s.Peerings {
		w.addPeering(Peering{A: ASN(pe.A), B: ASN(pe.B), IXP: IXPID(pe.IXP)})
	}
	if cs := s.CaseStudy; cs != nil {
		w.caseStudy = &CaseStudyRefs{
			Subject: ASN(cs.Subject), NationalISP: ASN(cs.NationalISP), SecondNational: ASN(cs.SecondNational),
			GlobalA: ASN(cs.GlobalA), GlobalB: ASN(cs.GlobalB), Legacy: ASN(cs.Legacy),
			Academic: ASN(cs.Academic), PeerB: ASN(cs.PeerB), PeerC: ASN(cs.PeerC),
			LocalIXP: IXPID(cs.LocalIXP), RemoteIXP: IXPID(cs.RemoteIXP),
		}
	}
	return w, nil
}
