package astopo

import (
	"fmt"
	"math"
	"sort"

	"eyeballas/internal/gazetteer"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/rng"
)

// Generate builds a ground-truth world from the configuration. Generation
// is fully deterministic in cfg.Seed.
func Generate(cfg Config) (*World, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	gaz := gazetteer.Default()
	root := rng.New(cfg.Seed)
	zips := gazetteer.SynthesizeZips(gaz, gazetteer.DefaultZipPlan(), root.Split("zips"))
	w := newWorld(cfg.Seed, gaz, gazetteer.NewZipIndex(zips))

	g := &generator{
		cfg:       cfg,
		w:         w,
		src:       root.Split("astopo"),
		alloc:     ipnet.NewAllocator(),
		nextASN:   100,
		transits:  make(map[string][]ASN),
		regionTra: make(map[gazetteer.Region][]ASN),
	}
	g.genTier1s()
	g.genTransits()
	g.genEyeballs()
	g.genContents()
	g.genIXPs()
	if cfg.PlantCaseStudy {
		if err := g.plantCaseStudy(); err != nil {
			return nil, err
		}
	}
	g.genIXPPeerings()
	return w, nil
}

type generator struct {
	cfg       Config
	w         *World
	src       *rng.Source
	alloc     *ipnet.Allocator
	nextASN   ASN
	tier1s    []ASN
	transits  map[string][]ASN           // country → transit ASNs
	regionTra map[gazetteer.Region][]ASN // region → transit ASNs
	nextIXP   IXPID
}

func (g *generator) newASN() ASN {
	n := g.nextASN
	g.nextASN++
	return n
}

// allocPrefixes gives an AS address space proportional to its customer
// count (roughly 2 addresses per customer, in /18 blocks).
func (g *generator) allocPrefixes(customers int) []ipnet.Prefix {
	blocks := customers * 2 / (1 << 14)
	if blocks < 1 {
		blocks = 1
	}
	if blocks > 64 {
		blocks = 64
	}
	out := make([]ipnet.Prefix, 0, blocks)
	for i := 0; i < blocks; i++ {
		p, err := g.alloc.Alloc(18)
		if err != nil {
			// Address space exhaustion cannot happen at supported world
			// sizes (64 blocks · few thousand ASes ≪ 2^18 /18s); treat as
			// a generator bug.
			panic(fmt.Sprintf("astopo: %v", err))
		}
		out = append(out, p)
	}
	return out
}

// genTier1s creates the transit-free global backbones: PoPs in the world's
// largest cities, full-mesh private peering, no end users.
func (g *generator) genTier1s() {
	cities := topCitiesGlobal(g.w.Gazetteer, 40)
	for i := 0; i < g.cfg.NTier1; i++ {
		s := g.src.SplitN("tier1", i)
		asn := g.newASN()
		n := s.IntRange(12, 24)
		perm := s.Perm(len(cities))
		a := &AS{
			ASN:    asn,
			Name:   fmt.Sprintf("GlobalBackbone-%d", i+1),
			Kind:   KindTier1,
			Level:  LevelGlobal,
			Region: gazetteer.Other,
		}
		for _, idx := range perm[:n] {
			a.PoPs = append(a.PoPs, PoP{City: cities[idx], ServesUsers: false})
		}
		a.Prefixes = g.allocPrefixes(1 << 15)
		g.w.addAS(a)
		g.tier1s = append(g.tier1s, asn)
	}
	for i := 0; i < len(g.tier1s); i++ {
		for j := i + 1; j < len(g.tier1s); j++ {
			g.w.addPeering(Peering{A: g.tier1s[i], B: g.tier1s[j]})
		}
	}
}

// genTransits creates national transit providers for every country in the
// gazetteer; they are the default upstreams of that country's eyeballs.
func (g *generator) genTransits() {
	for _, cc := range g.w.Gazetteer.Countries() {
		cities := g.w.Gazetteer.MajorInCountry(cc)
		if len(cities) == 0 {
			continue
		}
		s := g.src.Split("transit-" + cc)
		totalPop := 0
		for _, c := range cities {
			totalPop += c.Pop
		}
		count := 1
		if totalPop > 10_000_000 {
			count++
		}
		if totalPop > 40_000_000 && g.cfg.TransitsPerCountryMax >= 3 {
			count++
		}
		if count > g.cfg.TransitsPerCountryMax {
			count = g.cfg.TransitsPerCountryMax
		}
		for t := 0; t < count; t++ {
			asn := g.newASN()
			nPoPs := min(len(cities), s.IntRange(2, 8))
			a := &AS{
				ASN:     asn,
				Name:    fmt.Sprintf("Transit-%s-%d", cc, t+1),
				Kind:    KindTransit,
				Level:   LevelCountry,
				Region:  cities[0].Region,
				Country: cc,
			}
			for _, c := range cities[:nPoPs] { // most populous first
				a.PoPs = append(a.PoPs, PoP{City: c, ServesUsers: false})
			}
			a.Prefixes = g.allocPrefixes(1 << 14)
			g.w.addAS(a)
			g.transits[cc] = append(g.transits[cc], asn)
			g.regionTra[a.Region] = append(g.regionTra[a.Region], asn)
			// Two tier-1 uplinks.
			p1 := g.tier1s[s.Intn(len(g.tier1s))]
			p2 := g.tier1s[s.Intn(len(g.tier1s))]
			g.w.addProviderLink(asn, p1)
			g.w.addProviderLink(asn, p2)
		}
		// National transits peer with each other.
		ts := g.transits[cc]
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				if s.Bool(0.5) {
					g.w.addPeering(Peering{A: ts[i], B: ts[j]})
				}
			}
		}
	}
}

// countryWeightsInRegion returns countries of a region and weights
// proportional to their gazetteer population.
func (g *generator) countryWeightsInRegion(r gazetteer.Region) (ccs []string, weights []float64) {
	pops := make(map[string]int)
	for _, c := range g.w.Gazetteer.Cities() {
		if c.Region == r {
			pops[c.Country] += c.Pop
		}
	}
	ccs = make([]string, 0, len(pops))
	for cc := range pops {
		ccs = append(ccs, cc)
	}
	sort.Strings(ccs)
	weights = make([]float64, len(ccs))
	for i, cc := range ccs {
		weights[i] = float64(pops[cc])
	}
	return ccs, weights
}

// pickCities selects k distinct cities from the slice with probability
// proportional to population.
func pickCities(s *rng.Source, cities []gazetteer.City, k int) []gazetteer.City {
	if k >= len(cities) {
		out := append([]gazetteer.City(nil), cities...)
		return out
	}
	weights := make([]float64, len(cities))
	for i, c := range cities {
		weights[i] = float64(c.Pop)
	}
	var out []gazetteer.City
	for len(out) < k {
		idx := s.WeightedIndex(weights)
		if idx < 0 {
			break
		}
		out = append(out, cities[idx])
		weights[idx] = 0
	}
	return out
}

// regionOrder fixes a deterministic iteration order over regions.
var regionOrder = []gazetteer.Region{
	gazetteer.NA, gazetteer.EU, gazetteer.AS,
	gazetteer.SA, gazetteer.AF, gazetteer.OC,
}

func (g *generator) genEyeballs() {
	for _, region := range regionOrder {
		quota := g.cfg.EyeballsPerRegion[region]
		if quota == 0 {
			continue
		}
		ccs, weights := g.countryWeightsInRegion(region)
		if len(ccs) == 0 {
			continue
		}
		mix := g.cfg.LevelMix[region]
		for i := 0; i < quota; i++ {
			s := g.src.SplitN("eyeball-"+string(region), i)
			cc := ccs[s.WeightedIndex(weights)]
			g.genOneEyeball(s, region, cc, mix)
		}
	}
}

// genOneEyeball creates one eyeball AS in the given country.
func (g *generator) genOneEyeball(s *rng.Source, region gazetteer.Region, cc string, mix [3]float64) *AS {
	cities := g.w.Gazetteer.MajorInCountry(cc)
	level := []Level{LevelCity, LevelState, LevelCountry}[s.WeightedIndex(mix[:])]

	var home []gazetteer.City
	switch level {
	case LevelCity:
		home = pickCities(s, cities, 1)
	case LevelState:
		seed := pickCities(s, cities, 1)[0]
		for _, c := range cities {
			if c.State == seed.State {
				home = append(home, c)
			}
		}
		// A state with many cities: serve a subset.
		if len(home) > 6 {
			home = pickCities(s, home, s.IntRange(3, 6))
		}
	case LevelCountry:
		k := s.IntRange(3, min(20, max(3, len(cities))))
		home = pickCities(s, cities, k)
		// Country-wide providers nearly always cover the largest city.
		if s.Bool(0.7) && !containsCity(home, cities[0]) {
			home = append(home, cities[0])
		}
	}

	asn := g.newASN()
	a := &AS{
		ASN:     asn,
		Name:    fmt.Sprintf("Eyeball-%s-%d", cc, asn),
		Kind:    KindEyeball,
		Level:   level,
		Region:  region,
		Country: cc,
	}

	// Customer shares ∝ pop^0.85 with lognormal noise.
	shares := make([]float64, len(home))
	total := 0.0
	for i, c := range home {
		sh := math.Pow(float64(c.Pop), 0.85) * math.Exp(s.Norm(0, 0.4))
		shares[i] = sh
		total += sh
	}
	for i, c := range home {
		a.PoPs = append(a.PoPs, PoP{City: c, Share: shares[i] / total, ServesUsers: true})
	}

	// Optional infrastructure-only PoP away from customers (§5).
	if s.Bool(g.cfg.InfraPoPProb) {
		if infra, ok := g.pickInfraCity(s, a, cities); ok {
			a.PoPs = append(a.PoPs, PoP{City: infra, ServesUsers: false})
		}
	}

	// Customer population: bounded Pareto with a level multiplier.
	mult := map[Level]float64{LevelCity: 0.3, LevelState: 0.7, LevelCountry: 1.5}[level]
	customers := int(s.Pareto(g.cfg.CustomerMin, g.cfg.CustomerAlpha) * mult)
	if customers > g.cfg.CustomerCap {
		customers = g.cfg.CustomerCap
	}
	if customers < 1200 {
		customers = 1200
	}
	a.Customers = customers
	a.Prefixes = g.allocPrefixes(customers)

	// Upstream providers: rich, per the paper's §6 finding.
	g.attachProviders(s, a)

	// Publish PoP lists rarely, and only for wider-scope ASes.
	if level != LevelCity && s.Bool(g.cfg.PublishProb*3) {
		// The searchable population in §5 is state/country-level ASes;
		// 45/672 found. PublishProb is calibrated on the whole population,
		// ×3 compensates for restricting to the non-city levels here.
		a.PublishesPoPs = true
	}

	g.w.addAS(a)
	return a
}

// pickInfraCity picks a city for an infrastructure-only PoP: a major city
// of the same country (or, for European ASes, sometimes a major city
// elsewhere in the region — remote peering presence).
func (g *generator) pickInfraCity(s *rng.Source, a *AS, countryCities []gazetteer.City) (gazetteer.City, bool) {
	candidates := countryCities
	if a.Region == gazetteer.EU && s.Bool(0.3) {
		candidates = g.w.Gazetteer.MajorInRegion(gazetteer.EU)[:30]
	}
	for try := 0; try < 8; try++ {
		c := candidates[s.Intn(min(len(candidates), 10))]
		if !containsCity(popCities(a.PoPs), c) {
			return c, true
		}
	}
	return gazetteer.City{}, false
}

// attachProviders connects an eyeball/content AS to 1..UpstreamMax
// upstreams: national transits first, then regional ones, then tier-1s.
func (g *generator) attachProviders(s *rng.Source, a *AS) {
	nProv := 1 + s.WeightedIndex([]float64{0.30, 0.30, 0.20, 0.12, 0.08})
	if nProv > g.cfg.UpstreamMax {
		nProv = g.cfg.UpstreamMax
	}
	var pool []ASN
	pool = append(pool, g.transits[a.Country]...)
	for _, t := range g.regionTra[a.Region] {
		if g.w.AS(t).Country != a.Country {
			pool = append(pool, t)
		}
	}
	picked := map[ASN]bool{}
	for len(picked) < nProv {
		var p ASN
		switch {
		case len(picked) < len(g.transits[a.Country]) && s.Bool(0.8):
			p = g.transits[a.Country][s.Intn(len(g.transits[a.Country]))]
		case len(pool) > 0 && s.Bool(0.7):
			p = pool[s.Intn(len(pool))]
		default:
			p = g.tier1s[s.Intn(len(g.tier1s))]
		}
		if !picked[p] {
			picked[p] = true
			g.w.addProviderLink(a.ASN, p)
		}
	}
}

// genContents creates small content/enterprise ASes: one city, few users.
func (g *generator) genContents() {
	for _, region := range regionOrder {
		n := g.cfg.ContentPerRegion[region]
		for i := 0; i < n; i++ {
			s := g.src.SplitN("content-"+string(region), i)
			ccs, weights := g.countryWeightsInRegion(region)
			if len(ccs) == 0 {
				continue
			}
			cc := ccs[s.WeightedIndex(weights)]
			cities := g.w.Gazetteer.MajorInCountry(cc)
			city := pickCities(s, cities, 1)[0]
			asn := g.newASN()
			a := &AS{
				ASN:       asn,
				Name:      fmt.Sprintf("Content-%s-%d", cc, asn),
				Kind:      KindContent,
				Level:     LevelCity,
				Region:    region,
				Country:   cc,
				Customers: s.IntRange(800, 8000),
				PoPs:      []PoP{{City: city, Share: 1, ServesUsers: true}},
			}
			a.Prefixes = g.allocPrefixes(a.Customers)
			g.attachProviders(s, a)
			g.w.addAS(a)
		}
	}
}

// genIXPs places exchanges at each region's largest cities and signs up
// members.
func (g *generator) genIXPs() {
	for _, region := range regionOrder {
		n := g.cfg.IXPsPerRegion[region]
		cities := g.w.Gazetteer.MajorInRegion(region)
		if n > len(cities) {
			n = len(cities)
		}
		for i := 0; i < n; i++ {
			g.nextIXP++
			g.w.addIXP(&IXP{
				ID:   g.nextIXP,
				Name: fmt.Sprintf("%s-IX", cities[i].Name),
				City: cities[i],
			})
		}
	}
	// Membership pass.
	for _, asn := range g.w.ASNs() {
		a := g.w.AS(asn)
		s := g.src.SplitN("ixp-join", int(asn))
		for _, ix := range g.w.IXPs() {
			switch a.Kind {
			case KindTier1:
				if hasPoPIn(a, ix.City) && s.Bool(0.5) {
					g.w.joinIXP(ix.ID, asn)
				}
			case KindTransit, KindEyeball, KindContent:
				local := hasPoPIn(a, ix.City)
				sameCountry := a.Country == ix.City.Country
				sameRegion := a.Region == ix.City.Region
				switch {
				case local:
					if s.Bool(g.cfg.LocalIXPJoinProb[a.Region]) {
						g.w.joinIXP(ix.ID, asn)
					}
				case sameCountry:
					if s.Bool(g.cfg.RemoteIXPJoinProb[a.Region]) {
						g.w.joinIXP(ix.ID, asn)
					}
				case sameRegion:
					if s.Bool(g.cfg.RemoteIXPJoinProb[a.Region] * 0.25) {
						g.w.joinIXP(ix.ID, asn)
					}
				}
			}
		}
	}
}

// genIXPPeerings wires settlement-free peerings among IXP members. Runs
// after the case study is planted so planted members participate.
func (g *generator) genIXPPeerings() {
	for _, ix := range g.w.IXPs() {
		members := ix.Members
		if len(members) < 2 {
			continue
		}
		s := g.src.SplitN("ixp-peer", int(ix.ID))
		for _, m := range members {
			k := s.Poisson(3)
			for t := 0; t < k; t++ {
				o := members[s.Intn(len(members))]
				if o == m {
					continue
				}
				if g.related(m, o) {
					continue // customer-provider pairs do not also peer
				}
				g.w.addPeering(Peering{A: m, B: o, IXP: ix.ID})
			}
		}
	}
}

// related reports whether a and b have a customer-provider relationship.
func (g *generator) related(a, b ASN) bool {
	for _, p := range g.w.providers[a] {
		if p == b {
			return true
		}
	}
	for _, p := range g.w.providers[b] {
		if p == a {
			return true
		}
	}
	return false
}

// --- small helpers ---

func topCitiesGlobal(g *gazetteer.Gazetteer, n int) []gazetteer.City {
	cities := append([]gazetteer.City(nil), g.Cities()...)
	sort.Slice(cities, func(i, j int) bool {
		if cities[i].Pop != cities[j].Pop {
			return cities[i].Pop > cities[j].Pop
		}
		return cities[i].Name < cities[j].Name
	})
	if n > len(cities) {
		n = len(cities)
	}
	return cities[:n]
}

func hasPoPIn(a *AS, c gazetteer.City) bool {
	for _, p := range a.PoPs {
		if p.City.Name == c.Name && p.City.Country == c.Country {
			return true
		}
	}
	return false
}

func popCities(pops []PoP) []gazetteer.City {
	out := make([]gazetteer.City, len(pops))
	for i, p := range pops {
		out[i] = p.City
	}
	return out
}

func containsCity(cs []gazetteer.City, c gazetteer.City) bool {
	for _, x := range cs {
		if x.Name == c.Name && x.Country == c.Country {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
