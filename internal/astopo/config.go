package astopo

import (
	"fmt"

	"eyeballas/internal/gazetteer"
)

// Config controls world generation. The zero value is not usable; start
// from DefaultConfig (full scale) or SmallConfig (test scale).
type Config struct {
	Seed uint64

	// EyeballsPerRegion sets how many eyeball ASes each region receives.
	EyeballsPerRegion map[gazetteer.Region]int

	// LevelMix gives per-region weights for city/state/country-level
	// eyeball ASes. Defaults follow the asymmetry of the paper's Table 1:
	// North America is state-heavy, Europe country-heavy, Asia city-heavy.
	LevelMix map[gazetteer.Region][3]float64

	// NTier1 is the number of global transit-free backbones.
	NTier1 int

	// TransitsPerCountryMax caps national transit providers per country
	// (at least one is always created for countries hosting eyeballs).
	TransitsPerCountryMax int

	// Customer population per eyeball AS: bounded Pareto.
	CustomerMin   float64
	CustomerAlpha float64
	CustomerCap   int

	// UpstreamMax caps providers per eyeball AS (the paper's case study
	// found five on a "simple" eyeball; richness is the point).
	UpstreamMax int

	// InfraPoPProb is the probability an eyeball AS has an extra
	// infrastructure-only PoP away from its customers (§5's first
	// mismatch cause).
	InfraPoPProb float64

	// PublishProb is the probability a state- or country-level eyeball
	// AS publishes its PoP list online (the §5 reference dataset: 45 of
	// 672 searched, ≈ 6.7%).
	PublishProb float64

	// IXPsPerRegion places exchanges at each region's largest cities.
	IXPsPerRegion map[gazetteer.Region]int

	// LocalIXPJoinProb and RemoteIXPJoinProb control how readily eyeball
	// and transit ASes join exchanges in (resp. away from) their PoP
	// cities. Europe peers most actively (§1, §6).
	LocalIXPJoinProb  map[gazetteer.Region]float64
	RemoteIXPJoinProb map[gazetteer.Region]float64

	// ContentPerRegion adds small content/enterprise ASes (RAI-like).
	ContentPerRegion map[gazetteer.Region]int

	// PlantCaseStudy deterministically embeds the §6 scenario: a Rome
	// city-level content eyeball with five upstreams that peers remotely
	// at the Milan IXP, plus an Italy-wide residential provider.
	PlantCaseStudy bool
}

// DefaultConfig returns the full-scale configuration used by the
// experiment harness: ~650 eyeball ASes (the paper's 1233, scaled to keep
// a laptop run in seconds).
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed: seed,
		EyeballsPerRegion: map[gazetteer.Region]int{
			gazetteer.NA: 180, gazetteer.EU: 250, gazetteer.AS: 170,
			gazetteer.SA: 25, gazetteer.AF: 12, gazetteer.OC: 13,
		},
		LevelMix: map[gazetteer.Region][3]float64{
			// city, state, country — Table 1 ratios.
			gazetteer.NA: {36, 162, 129},
			gazetteer.EU: {60, 76, 292},
			gazetteer.AS: {117, 35, 134},
			gazetteer.SA: {30, 30, 40},
			gazetteer.AF: {30, 20, 50},
			gazetteer.OC: {30, 30, 40},
		},
		NTier1:                12,
		TransitsPerCountryMax: 3,
		CustomerMin:           6000,
		CustomerAlpha:         0.9,
		CustomerCap:           400000,
		UpstreamMax:           5,
		InfraPoPProb:          0.25,
		PublishProb:           0.067,
		IXPsPerRegion: map[gazetteer.Region]int{
			gazetteer.NA: 8, gazetteer.EU: 16, gazetteer.AS: 8,
			gazetteer.SA: 3, gazetteer.AF: 2, gazetteer.OC: 2,
		},
		LocalIXPJoinProb: map[gazetteer.Region]float64{
			gazetteer.NA: 0.40, gazetteer.EU: 0.70, gazetteer.AS: 0.40,
			gazetteer.SA: 0.35, gazetteer.AF: 0.30, gazetteer.OC: 0.35,
		},
		RemoteIXPJoinProb: map[gazetteer.Region]float64{
			gazetteer.NA: 0.05, gazetteer.EU: 0.18, gazetteer.AS: 0.06,
			gazetteer.SA: 0.04, gazetteer.AF: 0.03, gazetteer.OC: 0.04,
		},
		ContentPerRegion: map[gazetteer.Region]int{
			gazetteer.NA: 12, gazetteer.EU: 18, gazetteer.AS: 10,
		},
		PlantCaseStudy: true,
	}
}

// PaperConfig returns a configuration at the paper's population: 1233
// eyeball ASes split across regions in Table 1's proportions. A full
// pipeline run at this scale processes several million crawled peers and
// takes a few minutes; pair it with pipeline.PaperConfig's literal
// 1000-peer floor.
func PaperConfig(seed uint64) Config {
	c := DefaultConfig(seed)
	c.EyeballsPerRegion = map[gazetteer.Region]int{
		// Table 1 row sums: NA 327, EU 428, AS 286; the remainder of the
		// 1233 spread over the unprofiled regions.
		gazetteer.NA: 327, gazetteer.EU: 428, gazetteer.AS: 286,
		gazetteer.SA: 110, gazetteer.AF: 40, gazetteer.OC: 42,
	}
	c.CustomerCap = 800000
	return c
}

// SmallConfig returns a fast configuration for unit and integration tests:
// ~60 eyeball ASes.
func SmallConfig(seed uint64) Config {
	c := DefaultConfig(seed)
	c.EyeballsPerRegion = map[gazetteer.Region]int{
		gazetteer.NA: 18, gazetteer.EU: 24, gazetteer.AS: 16,
		gazetteer.SA: 2, gazetteer.AF: 1, gazetteer.OC: 1,
	}
	c.NTier1 = 6
	c.CustomerMin = 4000
	c.CustomerCap = 60000
	c.IXPsPerRegion = map[gazetteer.Region]int{
		gazetteer.NA: 4, gazetteer.EU: 6, gazetteer.AS: 4,
		gazetteer.SA: 1, gazetteer.AF: 1, gazetteer.OC: 1,
	}
	c.ContentPerRegion = map[gazetteer.Region]int{
		gazetteer.NA: 2, gazetteer.EU: 3, gazetteer.AS: 2,
	}
	return c
}

// validate reports configuration errors.
func (c Config) validate() error {
	if len(c.EyeballsPerRegion) == 0 {
		return fmt.Errorf("astopo: EyeballsPerRegion is empty")
	}
	if c.NTier1 < 2 {
		return fmt.Errorf("astopo: need at least 2 tier-1 ASes, got %d", c.NTier1)
	}
	if c.CustomerMin <= 0 || c.CustomerAlpha <= 0 || c.CustomerCap < int(c.CustomerMin) {
		return fmt.Errorf("astopo: invalid customer distribution (min %v alpha %v cap %d)",
			c.CustomerMin, c.CustomerAlpha, c.CustomerCap)
	}
	if c.UpstreamMax < 1 {
		return fmt.Errorf("astopo: UpstreamMax must be >= 1")
	}
	for r, mix := range c.LevelMix {
		if mix[0]+mix[1]+mix[2] <= 0 {
			return fmt.Errorf("astopo: level mix for %s sums to 0", r)
		}
	}
	return nil
}
