// Package astopo generates and represents the ground-truth synthetic
// Internet topology the reproduction measures: Autonomous Systems with
// geographically-placed Points of Presence, customer-provider and peering
// relationships, and Internet eXchange Points.
//
// The paper observes a real Internet it cannot fully see; here the world
// is generated first (so every experiment has exact ground truth) and the
// measurement substrates — P2P crawls, geolocation databases, BGP tables,
// traceroutes — each observe it imperfectly, the way the paper's inputs
// do.
package astopo

import (
	"fmt"
	"sort"

	"eyeballas/internal/gazetteer"
	"eyeballas/internal/ipnet"
)

// ASN is an Autonomous System number.
type ASN int

// Kind classifies an AS's role in the synthetic Internet.
type Kind int

// AS roles.
const (
	KindTier1   Kind = iota // global transit-free backbone
	KindTransit             // regional/national transit provider
	KindEyeball             // serves end users — the paper's subject
	KindContent             // content/enterprise network with few users
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindTier1:
		return "tier1"
	case KindTransit:
		return "transit"
	case KindEyeball:
		return "eyeball"
	case KindContent:
		return "content"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Level is the geographic scope of an AS, the paper's §2 classification:
// the smallest region containing >95% of the AS's users.
type Level int

// Geographic scopes, ordered from narrowest to widest.
const (
	LevelCity Level = iota
	LevelState
	LevelCountry
	LevelContinent
	LevelGlobal
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelCity:
		return "city"
	case LevelState:
		return "state"
	case LevelCountry:
		return "country"
	case LevelContinent:
		return "continent"
	case LevelGlobal:
		return "global"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// PoP is a ground-truth Point of Presence of an AS.
type PoP struct {
	City gazetteer.City
	// Share is the fraction of the AS's customers homed at this PoP;
	// zero for infrastructure-only PoPs.
	Share float64
	// ServesUsers is false for the peering/transit-only PoPs §5 blames
	// for validation mismatches ("PoPs in locations away from their
	// regular customers").
	ServesUsers bool
}

// AS is one Autonomous System with its ground truth.
type AS struct {
	ASN       ASN
	Name      string
	Kind      Kind
	Level     Level // meaningful for eyeball/content ASes
	Region    gazetteer.Region
	Country   string // ISO code of the home country ("" for tier-1s)
	PoPs      []PoP
	Prefixes  []ipnet.Prefix
	Customers int // number of end-user customers (eyeball ASes)
	// PublishesPoPs marks ASes whose PoP list is "posted on the web" —
	// the §5 reference dataset is drawn from these.
	PublishesPoPs bool
}

// UserPoPs returns the PoPs that home customers.
func (a *AS) UserPoPs() []PoP {
	var out []PoP
	for _, p := range a.PoPs {
		if p.ServesUsers {
			out = append(out, p)
		}
	}
	return out
}

// Peering is a settlement-free peer-to-peer relationship, established
// either at an IXP or privately.
type Peering struct {
	A, B ASN
	IXP  IXPID // 0 for private peering
}

// IXPID identifies an Internet eXchange Point.
type IXPID int

// IXP is an Internet eXchange Point at a city.
type IXP struct {
	ID      IXPID
	Name    string
	City    gazetteer.City
	Members []ASN
}

// World is the complete ground-truth topology plus the shared geography.
type World struct {
	Seed      uint64
	Gazetteer *gazetteer.Gazetteer
	Zips      *gazetteer.ZipIndex

	ases      map[ASN]*AS
	asnOrder  []ASN
	providers map[ASN][]ASN // customer → providers
	customers map[ASN][]ASN // provider → customers
	peerings  []Peering
	peers     map[ASN][]Peering
	ixps      map[IXPID]*IXP
	ixpOrder  []IXPID
	caseStudy *CaseStudyRefs
}

// newWorld allocates an empty world.
func newWorld(seed uint64, g *gazetteer.Gazetteer, zips *gazetteer.ZipIndex) *World {
	return &World{
		Seed:      seed,
		Gazetteer: g,
		Zips:      zips,
		ases:      make(map[ASN]*AS),
		providers: make(map[ASN][]ASN),
		customers: make(map[ASN][]ASN),
		peers:     make(map[ASN][]Peering),
		ixps:      make(map[IXPID]*IXP),
	}
}

// AS returns the AS with the given number, or nil.
func (w *World) AS(n ASN) *AS { return w.ases[n] }

// ASNs returns every AS number in creation order.
func (w *World) ASNs() []ASN { return w.asnOrder }

// ASes returns every AS in creation order.
func (w *World) ASes() []*AS {
	out := make([]*AS, len(w.asnOrder))
	for i, n := range w.asnOrder {
		out[i] = w.ases[n]
	}
	return out
}

// Eyeballs returns the eyeball ASes in creation order.
func (w *World) Eyeballs() []*AS {
	var out []*AS
	for _, n := range w.asnOrder {
		if w.ases[n].Kind == KindEyeball {
			out = append(out, w.ases[n])
		}
	}
	return out
}

// Providers returns the upstream providers of an AS.
func (w *World) Providers(n ASN) []ASN { return w.providers[n] }

// Customers returns the customers of an AS.
func (w *World) Customers(n ASN) []ASN { return w.customers[n] }

// Peers returns the peerings an AS participates in.
func (w *World) Peers(n ASN) []Peering { return w.peers[n] }

// Peerings returns every peering.
func (w *World) Peerings() []Peering { return w.peerings }

// IXP returns the IXP with the given ID, or nil.
func (w *World) IXP(id IXPID) *IXP { return w.ixps[id] }

// IXPs returns every IXP in creation order.
func (w *World) IXPs() []*IXP {
	out := make([]*IXP, len(w.ixpOrder))
	for i, id := range w.ixpOrder {
		out[i] = w.ixps[id]
	}
	return out
}

// IXPsInCity returns the IXPs located in the named city/country.
func (w *World) IXPsInCity(city, country string) []*IXP {
	var out []*IXP
	for _, id := range w.ixpOrder {
		x := w.ixps[id]
		if x.City.Name == city && x.City.Country == country {
			out = append(out, x)
		}
	}
	return out
}

// addAS registers an AS. It panics on a duplicate ASN (a generator bug).
func (w *World) addAS(a *AS) {
	if _, dup := w.ases[a.ASN]; dup {
		panic(fmt.Sprintf("astopo: duplicate ASN %d", a.ASN))
	}
	w.ases[a.ASN] = a
	w.asnOrder = append(w.asnOrder, a.ASN)
}

// addProviderLink records customer → provider.
func (w *World) addProviderLink(customer, provider ASN) {
	for _, p := range w.providers[customer] {
		if p == provider {
			return
		}
	}
	w.providers[customer] = append(w.providers[customer], provider)
	w.customers[provider] = append(w.customers[provider], customer)
}

// addPeering records a settlement-free peering; duplicates (same pair,
// same IXP) are ignored.
func (w *World) addPeering(p Peering) {
	if p.A == p.B {
		return
	}
	if p.A > p.B {
		p.A, p.B = p.B, p.A
	}
	for _, q := range w.peers[p.A] {
		if q.A == p.A && q.B == p.B && q.IXP == p.IXP {
			return
		}
	}
	w.peerings = append(w.peerings, p)
	w.peers[p.A] = append(w.peers[p.A], p)
	w.peers[p.B] = append(w.peers[p.B], p)
}

// addIXP registers an IXP.
func (w *World) addIXP(x *IXP) {
	w.ixps[x.ID] = x
	w.ixpOrder = append(w.ixpOrder, x.ID)
}

// joinIXP adds an AS to an IXP's member list.
func (w *World) joinIXP(id IXPID, n ASN) {
	x := w.ixps[id]
	for _, m := range x.Members {
		if m == n {
			return
		}
	}
	x.Members = append(x.Members, n)
}

// MemberOf reports whether an AS is a member of the IXP.
func (w *World) MemberOf(id IXPID, n ASN) bool {
	x := w.ixps[id]
	if x == nil {
		return false
	}
	for _, m := range x.Members {
		if m == n {
			return true
		}
	}
	return false
}

// Stats summarizes the world for reports.
type Stats struct {
	ASes, Eyeballs, Transits, Tier1s, Contents int
	IXPs, Peerings, ProviderLinks              int
	ByRegion                                   map[gazetteer.Region]int // eyeballs per region
	ByLevel                                    map[Level]int            // eyeballs per level
}

// Stats computes summary statistics.
func (w *World) Stats() Stats {
	s := Stats{
		ByRegion: make(map[gazetteer.Region]int),
		ByLevel:  make(map[Level]int),
	}
	for _, a := range w.ases {
		s.ASes++
		switch a.Kind {
		case KindTier1:
			s.Tier1s++
		case KindTransit:
			s.Transits++
		case KindContent:
			s.Contents++
		case KindEyeball:
			s.Eyeballs++
			s.ByRegion[a.Region]++
			s.ByLevel[a.Level]++
		}
	}
	s.IXPs = len(w.ixps)
	s.Peerings = len(w.peerings)
	for _, ps := range w.providers {
		s.ProviderLinks += len(ps)
	}
	return s
}

// sortedASNs returns a sorted copy of a set of ASNs, for deterministic
// iteration in generators.
func sortedASNs(m map[ASN]bool) []ASN {
	out := make([]ASN, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
