package astopo

import (
	"fmt"

	"eyeballas/internal/gazetteer"
)

// CaseStudyRefs names the ASes and IXPs of the planted §6 scenario so the
// experiment harness can interrogate them directly. The cast mirrors the
// paper's: Subject ↔ AS8234 (RAI, Rome); NationalISP ↔ AS1267
// (Infostrada); SecondNational ↔ Fastweb; GlobalA/GlobalB ↔ Easynet/Colt;
// Legacy ↔ BT-Italia; Academic/PeerB/PeerC ↔ GARR/ASDASD/ITGate;
// LocalIXP ↔ NaMEX (Rome); RemoteIXP ↔ MIX (Milan).
type CaseStudyRefs struct {
	Subject        ASN // city-level eyeball in Rome, ~3000 P2P users
	NationalISP    ASN // Italy-wide residential provider (largest)
	SecondNational ASN // second Italy-wide provider
	GlobalA        ASN // global-reach service provider
	GlobalB        ASN // global-reach service provider
	Legacy         ASN // the country's legacy ISP
	Academic       ASN // research network, member of both IXPs
	PeerB          ASN // Milan-only network
	PeerC          ASN // Milan-only network
	LocalIXP       IXPID
	RemoteIXP      IXPID
}

// CaseStudy returns the planted §6 scenario, or nil if the world was
// generated without one.
func (w *World) CaseStudy() *CaseStudyRefs { return w.caseStudy }

// plantCaseStudy deterministically embeds the paper's §6 connectivity
// scenario in Italy.
func (g *generator) plantCaseStudy() error {
	gaz := g.w.Gazetteer
	rome, ok := gaz.Find("Rome", "IT")
	if !ok {
		return fmt.Errorf("astopo: gazetteer lacks Rome")
	}
	milan, ok := gaz.Find("Milan", "IT")
	if !ok {
		return fmt.Errorf("astopo: gazetteer lacks Milan")
	}
	itCities := gaz.MajorInCountry("IT")
	s := g.src.Split("casestudy")

	refs := &CaseStudyRefs{}

	// IXPs: the local (Rome) and remote (Milan) exchanges; reuse if the
	// IXP pass already created them.
	refs.LocalIXP = g.ensureIXP(rome)
	refs.RemoteIXP = g.ensureIXP(milan)

	// Italy-wide residential provider with PoPs across the country,
	// including Rome — the "natural" upstream a geography-based view
	// would predict.
	national := &AS{
		ASN: g.newASN(), Name: "NationalNet-IT", Kind: KindEyeball,
		Level: LevelCountry, Region: gazetteer.EU, Country: "IT",
		Customers: g.cfg.CustomerCap, PublishesPoPs: true,
	}
	k := min(12, len(itCities))
	total := 0.0
	for _, c := range itCities[:k] {
		total += float64(c.Pop)
	}
	for _, c := range itCities[:k] {
		national.PoPs = append(national.PoPs, PoP{City: c, Share: float64(c.Pop) / total, ServesUsers: true})
	}
	national.Prefixes = g.allocPrefixes(national.Customers)
	g.w.addAS(national)
	g.w.addProviderLink(national.ASN, g.tier1s[0])
	g.w.addProviderLink(national.ASN, g.tier1s[1%len(g.tier1s)])
	refs.NationalISP = national.ASN

	// Second national provider.
	second := &AS{
		ASN: g.newASN(), Name: "SecondNet-IT", Kind: KindEyeball,
		Level: LevelCountry, Region: gazetteer.EU, Country: "IT",
		Customers: g.cfg.CustomerCap / 2,
	}
	k2 := min(8, len(itCities))
	total = 0
	for _, c := range itCities[:k2] {
		total += float64(c.Pop)
	}
	for _, c := range itCities[:k2] {
		second.PoPs = append(second.PoPs, PoP{City: c, Share: float64(c.Pop) / total, ServesUsers: true})
	}
	second.Prefixes = g.allocPrefixes(second.Customers)
	g.w.addAS(second)
	g.w.addProviderLink(second.ASN, g.tier1s[s.Intn(len(g.tier1s))])
	g.w.addProviderLink(second.ASN, g.tier1s[s.Intn(len(g.tier1s))])
	refs.SecondNational = second.ASN

	// Two global-reach service providers with European footprints.
	euTop := gaz.MajorInRegion(gazetteer.EU)
	for i, name := range []string{"EuroReach-A", "EuroReach-B"} {
		a := &AS{
			ASN: g.newASN(), Name: name, Kind: KindTransit,
			Level: LevelContinent, Region: gazetteer.EU,
		}
		n := min(14, len(euTop))
		for _, c := range euTop[:n] {
			a.PoPs = append(a.PoPs, PoP{City: c, ServesUsers: false})
		}
		a.Prefixes = g.allocPrefixes(1 << 14)
		g.w.addAS(a)
		g.w.addProviderLink(a.ASN, g.tier1s[i%len(g.tier1s)])
		g.w.addProviderLink(a.ASN, g.tier1s[(i+2)%len(g.tier1s)])
		if i == 0 {
			refs.GlobalA = a.ASN
		} else {
			refs.GlobalB = a.ASN
		}
	}

	// Legacy national ISP: reuse the first Italian transit, or create one.
	if ts := g.transits["IT"]; len(ts) > 0 {
		refs.Legacy = ts[0]
	} else {
		legacy := &AS{
			ASN: g.newASN(), Name: "Legacy-IT", Kind: KindTransit,
			Level: LevelCountry, Region: gazetteer.EU, Country: "IT",
		}
		for _, c := range itCities[:min(6, len(itCities))] {
			legacy.PoPs = append(legacy.PoPs, PoP{City: c, ServesUsers: false})
		}
		legacy.Prefixes = g.allocPrefixes(1 << 14)
		g.w.addAS(legacy)
		g.w.addProviderLink(legacy.ASN, g.tier1s[0])
		g.transits["IT"] = append(g.transits["IT"], legacy.ASN)
		refs.Legacy = legacy.ASN
	}

	// The three Milan peers: an academic network present at both IXPs and
	// two Milan-only networks.
	mkPeer := func(name string, cities []gazetteer.City) ASN {
		a := &AS{
			ASN: g.newASN(), Name: name, Kind: KindTransit,
			Level: LevelCountry, Region: gazetteer.EU, Country: "IT",
		}
		for _, c := range cities {
			a.PoPs = append(a.PoPs, PoP{City: c, ServesUsers: false})
		}
		a.Prefixes = g.allocPrefixes(1 << 12)
		g.w.addAS(a)
		g.w.addProviderLink(a.ASN, g.tier1s[s.Intn(len(g.tier1s))])
		return a.ASN
	}
	refs.Academic = mkPeer("AcademicNet-IT", []gazetteer.City{milan, rome})
	refs.PeerB = mkPeer("MilanoData", []gazetteer.City{milan})
	refs.PeerC = mkPeer("PortaNet-IT", []gazetteer.City{milan})

	// The subject: a Rome-only content/broadcast eyeball, ~3000 P2P users.
	subject := &AS{
		ASN: g.newASN(), Name: "RomaMedia", Kind: KindContent,
		Level: LevelCity, Region: gazetteer.EU, Country: "IT",
		Customers: 3000,
		PoPs:      []PoP{{City: rome, Share: 1, ServesUsers: true}},
	}
	subject.Prefixes = g.allocPrefixes(subject.Customers)
	g.w.addAS(subject)
	refs.Subject = subject.ASN

	// Five upstreams — the paper's surprise.
	for _, p := range []ASN{refs.NationalISP, refs.SecondNational, refs.GlobalA, refs.GlobalB, refs.Legacy} {
		g.w.addProviderLink(subject.ASN, p)
	}

	// IXP membership: the subject joins the REMOTE exchange only.
	g.w.joinIXP(refs.RemoteIXP, subject.ASN)
	g.w.joinIXP(refs.RemoteIXP, refs.Academic)
	g.w.joinIXP(refs.LocalIXP, refs.Academic) // present at both, like GARR
	g.w.joinIXP(refs.RemoteIXP, refs.PeerB)
	g.w.joinIXP(refs.RemoteIXP, refs.PeerC)
	g.w.joinIXP(refs.LocalIXP, refs.NationalISP)
	g.w.joinIXP(refs.RemoteIXP, refs.NationalISP)

	// The subject's three remote peerings at Milan.
	for _, p := range []ASN{refs.Academic, refs.PeerB, refs.PeerC} {
		g.w.addPeering(Peering{A: subject.ASN, B: p, IXP: refs.RemoteIXP})
	}

	g.w.caseStudy = refs
	return nil
}

// ensureIXP returns the ID of an IXP in the given city, creating one if
// the random IXP pass did not.
func (g *generator) ensureIXP(city gazetteer.City) IXPID {
	for _, ix := range g.w.IXPs() {
		if ix.City.Name == city.Name && ix.City.Country == city.Country {
			return ix.ID
		}
	}
	g.nextIXP++
	g.w.addIXP(&IXP{ID: g.nextIXP, Name: fmt.Sprintf("%s-IX", city.Name), City: city})
	return g.nextIXP
}
