package astopo

import "testing"

func BenchmarkGenerateSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(SmallConfig(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateDefault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(DefaultConfig(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
