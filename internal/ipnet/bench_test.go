package ipnet

import (
	"sync"
	"testing"
)

func benchTable(nPrefixes int) (*Table[int], []Addr) {
	tb := NewTable[int]()
	al := NewAllocator()
	var probes []Addr
	for i := 0; i < nPrefixes; i++ {
		p, err := al.Alloc(16 + i%8)
		if err != nil {
			panic(err)
		}
		tb.Insert(p, i)
		probes = append(probes, p.Nth(uint64(i)*7919))
	}
	return tb, probes
}

// ribScale approximates a merged RouteViews origin table: ~100k prefixes
// of mixed /16../23 lengths. Built once and shared across benchmarks.
const ribScale = 100_000

var ribBench struct {
	once     sync.Once
	table    *Table[int]
	compiled *Compiled[int]
	dense    []Addr // probes that hit stored prefixes
	sparse   []Addr // probes spread over the whole space (mostly misses)
}

func ribBenchSetup(b *testing.B) {
	b.Helper()
	ribBench.once.Do(func() {
		tb, dense := benchTable(ribScale)
		ribBench.table = tb
		ribBench.compiled = tb.Compile()
		// Dense mix: one probe inside every stored prefix, shuffled so
		// consecutive lookups do not share trie paths or cache lines —
		// the pipeline's peers arrive in arbitrary address order, not
		// sorted by prefix.
		x := uint32(0x9e3779b9)
		next := func(n int) int { // deterministic LCG in [0, n)
			x = x*1664525 + 1013904223
			return int(uint64(x) * uint64(n) >> 32)
		}
		for i := len(dense) - 1; i > 0; i-- {
			j := next(i + 1)
			dense[i], dense[j] = dense[j], dense[i]
		}
		ribBench.dense = dense
		// Sparse mix: a pseudo-random walk over the full 32-bit space,
		// including unallocated and reserved regions.
		ribBench.sparse = make([]Addr, len(dense))
		for i := range ribBench.sparse {
			x = x*1664525 + 1013904223
			ribBench.sparse[i] = Addr(x)
		}
	})
}

func benchLookupTrie(b *testing.B, sparse bool) {
	ribBenchSetup(b)
	probes := ribBench.dense
	if sparse {
		probes = ribBench.sparse
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ribBench.table.Lookup(probes[i%len(probes)])
	}
}

func benchLookupCompiled(b *testing.B, sparse bool) {
	ribBenchSetup(b)
	probes := ribBench.dense
	if sparse {
		probes = ribBench.sparse
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ribBench.compiled.Lookup(probes[i%len(probes)])
	}
}

// The Dense/Sparse pairs below are the PR's headline numbers
// (BENCH_pr2.json): trie = before, compiled = after.

func BenchmarkTableLookupDense(b *testing.B)     { benchLookupTrie(b, false) }
func BenchmarkTableLookupSparse(b *testing.B)    { benchLookupTrie(b, true) }
func BenchmarkCompiledLookupDense(b *testing.B)  { benchLookupCompiled(b, false) }
func BenchmarkCompiledLookupSparse(b *testing.B) { benchLookupCompiled(b, true) }

// BenchmarkCompileRIBScale measures the one-off cost of freezing a
// RIB-scale trie into the flat form.
func BenchmarkCompileRIBScale(b *testing.B) {
	ribBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := ribBench.table.Compile(); c.Len() != ribScale {
			b.Fatal("bad compile")
		}
	}
}

// BenchmarkTableBuildRIBScale measures building the mutable trie itself
// (the construction-time structure the compiled form snapshots).
func BenchmarkTableBuildRIBScale(b *testing.B) {
	al := NewAllocator()
	prefixes := make([]Prefix, ribScale)
	for i := range prefixes {
		p, err := al.Alloc(16 + i%8)
		if err != nil {
			b.Fatal(err)
		}
		prefixes[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := NewTable[int]()
		for j, p := range prefixes {
			tb.Insert(p, j)
		}
	}
}

func BenchmarkTableLookup(b *testing.B) {
	tb, probes := benchTable(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tb.Lookup(probes[i%len(probes)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkTableInsert(b *testing.B) {
	al := NewAllocator()
	prefixes := make([]Prefix, 10000)
	for i := range prefixes {
		p, err := al.Alloc(16 + i%8)
		if err != nil {
			b.Fatal(err)
		}
		prefixes[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := NewTable[int]()
		for j, p := range prefixes {
			tb.Insert(p, j)
		}
	}
}

func BenchmarkParseAddr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseAddr("203.0.113.77"); err != nil {
			b.Fatal(err)
		}
	}
}
