package ipnet

import (
	"testing"
)

func benchTable(nPrefixes int) (*Table[int], []Addr) {
	tb := NewTable[int]()
	al := NewAllocator()
	var probes []Addr
	for i := 0; i < nPrefixes; i++ {
		p, err := al.Alloc(16 + i%8)
		if err != nil {
			panic(err)
		}
		tb.Insert(p, i)
		probes = append(probes, p.Nth(uint64(i)*7919))
	}
	return tb, probes
}

func BenchmarkTableLookup(b *testing.B) {
	tb, probes := benchTable(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tb.Lookup(probes[i%len(probes)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkTableInsert(b *testing.B) {
	al := NewAllocator()
	prefixes := make([]Prefix, 10000)
	for i := range prefixes {
		p, err := al.Alloc(16 + i%8)
		if err != nil {
			b.Fatal(err)
		}
		prefixes[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := NewTable[int]()
		for j, p := range prefixes {
			tb.Insert(p, j)
		}
	}
}

func BenchmarkParseAddr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseAddr("203.0.113.77"); err != nil {
			b.Fatal(err)
		}
	}
}
