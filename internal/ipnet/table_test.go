package ipnet

import (
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) Prefix {
	t.Helper()
	p, err := ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTableLongestPrefixMatch(t *testing.T) {
	tb := NewTable[string]()
	tb.Insert(mustPrefix(t, "10.0.0.0/8"), "big")
	tb.Insert(mustPrefix(t, "10.1.0.0/16"), "mid")
	tb.Insert(mustPrefix(t, "10.1.2.0/24"), "small")

	cases := []struct {
		addr string
		want string
		ok   bool
	}{
		{"10.1.2.3", "small", true},
		{"10.1.9.9", "mid", true},
		{"10.9.9.9", "big", true},
		{"11.0.0.1", "", false},
	}
	for _, c := range cases {
		a, _ := ParseAddr(c.addr)
		got, ok := tb.Lookup(a)
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%s) = %q, %v; want %q, %v", c.addr, got, ok, c.want, c.ok)
		}
	}
	if tb.Len() != 3 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableDefaultRoute(t *testing.T) {
	tb := NewTable[int]()
	tb.Insert(Prefix{Addr: 0, Bits: 0}, 42)
	got, ok := tb.Lookup(MakeAddr(200, 1, 1, 1))
	if !ok || got != 42 {
		t.Errorf("default route lookup = %v, %v", got, ok)
	}
}

func TestTableReplace(t *testing.T) {
	tb := NewTable[int]()
	p := mustPrefix(t, "10.0.0.0/8")
	tb.Insert(p, 1)
	tb.Insert(p, 2)
	if tb.Len() != 1 {
		t.Errorf("Len after replace = %d", tb.Len())
	}
	if v, ok := tb.LookupPrefix(p); !ok || v != 2 {
		t.Errorf("LookupPrefix = %v, %v", v, ok)
	}
}

func TestTableLookupPrefixExact(t *testing.T) {
	tb := NewTable[int]()
	tb.Insert(mustPrefix(t, "10.0.0.0/8"), 1)
	if _, ok := tb.LookupPrefix(mustPrefix(t, "10.0.0.0/9")); ok {
		t.Error("LookupPrefix matched a non-inserted child")
	}
	if _, ok := tb.LookupPrefix(mustPrefix(t, "12.0.0.0/8")); ok {
		t.Error("LookupPrefix matched absent prefix")
	}
}

func TestTableHostRoute(t *testing.T) {
	tb := NewTable[int]()
	a, _ := ParseAddr("1.2.3.4")
	tb.Insert(Prefix{Addr: a, Bits: 32}, 7)
	if v, ok := tb.Lookup(a); !ok || v != 7 {
		t.Errorf("host route lookup = %v, %v", v, ok)
	}
	if _, ok := tb.Lookup(a + 1); ok {
		t.Error("host route leaked to neighbour")
	}
}

func TestTableWalkOrder(t *testing.T) {
	tb := NewTable[string]()
	prefixes := []string{"10.0.0.0/8", "9.0.0.0/8", "10.1.0.0/16", "192.0.0.0/8"}
	for _, s := range prefixes {
		tb.Insert(mustPrefix(t, s), s)
	}
	var got []string
	tb.Walk(func(p Prefix, v string) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16", "192.0.0.0/8"}
	if len(got) != len(want) {
		t.Fatalf("walk visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	tb.Walk(func(Prefix, string) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

// TestTableMatchesLinearScan cross-checks the trie against a brute-force
// longest-prefix match over random prefix sets.
func TestTableMatchesLinearScan(t *testing.T) {
	type entry struct {
		p Prefix
		v int
	}
	f := func(seeds []uint32, probes []uint32) bool {
		if len(seeds) > 64 {
			seeds = seeds[:64]
		}
		tb := NewTable[int]()
		var entries []entry
		for i, s := range seeds {
			p := MakePrefix(Addr(s), int(s%25)+8)
			tb.Insert(p, i)
			// Later inserts replace earlier ones for the same prefix,
			// mirror that in the reference list.
			replaced := false
			for j := range entries {
				if entries[j].p == p {
					entries[j].v = i
					replaced = true
					break
				}
			}
			if !replaced {
				entries = append(entries, entry{p, i})
			}
		}
		for _, pv := range probes {
			a := Addr(pv)
			bestBits, bestVal, found := -1, 0, false
			for _, e := range entries {
				if e.p.Contains(a) && e.p.Bits > bestBits {
					bestBits, bestVal, found = e.p.Bits, e.v, true
				}
			}
			got, ok := tb.Lookup(a)
			if ok != found || (ok && got != bestVal) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
