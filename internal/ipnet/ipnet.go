// Package ipnet provides the IPv4 value types the synthetic Internet uses:
// addresses, prefixes, a sequential prefix allocator for assigning address
// space to ASes, and a radix-trie table with longest-prefix match for
// IP→AS resolution (the role RouteViews BGP tables play in the paper).
package ipnet

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address as a big-endian uint32.
type Addr uint32

// MakeAddr builds an address from dotted-quad octets.
func MakeAddr(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ipnet: invalid address %q", s)
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("ipnet: invalid address %q", s)
		}
		v = v<<8 | uint32(n)
	}
	return Addr(v), nil
}

// String renders dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Prefix is an IPv4 CIDR prefix. The address is stored in canonical form
// (host bits zero).
type Prefix struct {
	Addr Addr
	Bits int // 0..32
}

// MakePrefix canonicalizes addr/bits, zeroing host bits. It panics if bits
// is outside [0, 32].
func MakePrefix(addr Addr, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic(fmt.Sprintf("ipnet: invalid prefix length %d", bits))
	}
	return Prefix{Addr: addr & mask(bits), Bits: bits}
}

// ParsePrefix parses "a.b.c.d/len" notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ipnet: invalid prefix %q", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ipnet: invalid prefix length in %q", s)
	}
	if addr&mask(bits) != addr {
		return Prefix{}, fmt.Errorf("ipnet: prefix %q has host bits set", s)
	}
	return Prefix{Addr: addr, Bits: bits}, nil
}

func mask(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - bits))
}

// String renders CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }

// Contains reports whether a lies inside the prefix.
func (p Prefix) Contains(a Addr) bool { return a&mask(p.Bits) == p.Addr }

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Bits <= q.Bits {
		return p.Contains(q.Addr)
	}
	return q.Contains(p.Addr)
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 { return uint64(1) << (32 - p.Bits) }

// First returns the lowest address in the prefix.
func (p Prefix) First() Addr { return p.Addr }

// Last returns the highest address in the prefix.
func (p Prefix) Last() Addr { return p.Addr | ^mask(p.Bits) }

// Nth returns the n-th address in the prefix (0-based, wrapping within the
// prefix size).
func (p Prefix) Nth(n uint64) Addr {
	return p.Addr + Addr(n%p.NumAddrs())
}

// Halves splits the prefix into its two children. It panics on a /32.
func (p Prefix) Halves() (lo, hi Prefix) {
	if p.Bits >= 32 {
		panic("ipnet: cannot split a /32")
	}
	lo = Prefix{Addr: p.Addr, Bits: p.Bits + 1}
	hi = Prefix{Addr: p.Addr | (1 << (31 - p.Bits)), Bits: p.Bits + 1}
	return lo, hi
}

// Allocator hands out disjoint prefixes of requested sizes from the
// globally-routable-looking space [1.0.0.0, 224.0.0.0), skipping the
// private and loopback ranges so synthetic addresses look plausible.
type Allocator struct {
	next uint64 // next free address as uint64 to detect exhaustion
}

// reservedRanges are skipped by the allocator.
var reservedRanges = []Prefix{
	{Addr: MakeAddr(10, 0, 0, 0), Bits: 8},
	{Addr: MakeAddr(127, 0, 0, 0), Bits: 8},
	{Addr: MakeAddr(169, 254, 0, 0), Bits: 16},
	{Addr: MakeAddr(172, 16, 0, 0), Bits: 12},
	{Addr: MakeAddr(192, 168, 0, 0), Bits: 16},
}

// NewAllocator returns an allocator starting at 1.0.0.0.
func NewAllocator() *Allocator {
	return &Allocator{next: uint64(MakeAddr(1, 0, 0, 0))}
}

// Alloc returns the next free prefix of the given length, or an error when
// the space is exhausted. Allocation is aligned to the prefix size.
func (al *Allocator) Alloc(bits int) (Prefix, error) {
	if bits < 8 || bits > 30 {
		return Prefix{}, fmt.Errorf("ipnet: unsupported allocation size /%d", bits)
	}
	size := uint64(1) << (32 - bits)
	for {
		start := (al.next + size - 1) / size * size // align
		if start+size > uint64(MakeAddr(224, 0, 0, 0)) {
			return Prefix{}, fmt.Errorf("ipnet: address space exhausted")
		}
		p := Prefix{Addr: Addr(start), Bits: bits}
		conflict := false
		for _, r := range reservedRanges {
			if p.Overlaps(r) {
				al.next = uint64(r.Last()) + 1
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		al.next = start + size
		return p, nil
	}
}
