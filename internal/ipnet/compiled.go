package ipnet

import "fmt"

// Compiled is an immutable, flat compilation of a Table: the
// pointer-chasing binary radix trie frozen into sorted disjoint address
// ranges, one per region of the address space with a distinct
// longest-prefix match. Lookup is a single allocation-free binary search
// over a contiguous []Addr — at most ⌈log₂(2n+1)⌉ comparisons touching a
// handful of cache lines — instead of up to 32 dependent pointer loads in
// the trie. See DESIGN.md §"Compiled LPM" for the structure choice.
//
// A Compiled view is a snapshot: mutating the source Table after Compile
// does not affect it. It is safe for concurrent use by multiple
// goroutines.
type Compiled[V any] struct {
	// prefixes/values hold the stored pairs in the trie's Walk order
	// (lexicographic: ascending address, then ascending length); they
	// back Walk, Len, and LookupPrefix.
	prefixes []Prefix
	values   []V

	// starts/segIdx are the flattened LPM: starts is the ascending list
	// of segment start addresses (starts[0] is always 0) and segIdx[i]
	// is the index into prefixes/values of the longest prefix covering
	// [starts[i], starts[i+1]), or -1 where no stored prefix matches.
	// A prefix set of size n flattens to at most 2n+1 segments.
	starts []Addr
	segIdx []int32

	// first is the direct-indexed top level: first[c] is the index of
	// the first segment whose start lies at or above c<<16, for every
	// 16-bit chunk c (first[1<<16] == len(starts)). A lookup lands in
	// the window [first[a>>16], first[a>>16+1]) — on real routing
	// tables a handful of segments — so the binary search degenerates
	// to a couple of comparisons against adjacent cache lines instead
	// of ~log₂(2n) scattered probes.
	first []int32
}

// maxAddr is the highest IPv4 address (255.255.255.255).
const maxAddr = ^Addr(0)

// Compile freezes the table into its flat immutable form. The build is a
// single in-order walk of the trie with a stack of enclosing prefixes —
// O(n) segments from n prefixes, O(n·w) time for trie depth w — and is
// deterministic: compiling the same table twice yields identical
// structures.
func (t *Table[V]) Compile() *Compiled[V] {
	c := &Compiled[V]{
		prefixes: make([]Prefix, 0, t.size),
		values:   make([]V, 0, t.size),
		starts:   make([]Addr, 0, 2*t.size+1),
		segIdx:   make([]int32, 0, 2*t.size+1),
	}
	// frame is one enclosing prefix on the sweep stack; prefixes form a
	// laminar family, so the stack is properly nested and the innermost
	// (longest) match is always on top.
	type frame struct {
		last Addr  // last address covered by the prefix
		idx  int32 // index into c.prefixes
	}
	// Sentinel: the whole space matches nothing until a prefix starts.
	stack := []frame{{last: maxAddr, idx: -1}}
	c.emit(0, -1)

	t.Walk(func(p Prefix, v V) bool {
		idx := int32(len(c.prefixes))
		c.prefixes = append(c.prefixes, p)
		c.values = append(c.values, v)
		// Close every enclosing prefix that ends before this one starts;
		// the range after it resumes the next prefix down the stack.
		for len(stack) > 1 && stack[len(stack)-1].last < p.Addr {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c.emit(top.last+1, stack[len(stack)-1].idx)
		}
		c.emit(p.Addr, idx)
		stack = append(stack, frame{last: p.Last(), idx: idx})
		return true
	})
	// Drain the stack: each closing prefix resumes its parent, except at
	// the very top of the address space where nothing follows.
	for len(stack) > 1 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if top.last == maxAddr {
			break // everything below ends at maxAddr too
		}
		c.emit(top.last+1, stack[len(stack)-1].idx)
	}
	// Top-level chunk index, filled segment-driven in one pass:
	// first[ch] is the first segment k with starts[k] >= ch<<16, i.e.
	// the first k whose chunk starts[k]>>16 reaches ch. first[0] = 0
	// (starts[0] == 0) stays from make.
	c.first = make([]int32, (1<<16)+1)
	ch := 1
	for k := 1; k < len(c.starts); k++ {
		for sc := int(c.starts[k] >> 16); ch <= sc; ch++ {
			c.first[ch] = int32(k)
		}
	}
	for ; ch <= 1<<16; ch++ {
		c.first[ch] = int32(len(c.starts))
	}
	return c
}

// emit records that the longest-prefix match changes to prefix index idx
// at address start. Re-emitting at the same start overrides (a nested
// prefix beginning exactly where its parent does), and consecutive
// segments with the same match are merged.
func (c *Compiled[V]) emit(start Addr, idx int32) {
	if n := len(c.starts); n > 0 && c.starts[n-1] == start {
		c.starts = c.starts[:n-1]
		c.segIdx = c.segIdx[:n-1]
	}
	if n := len(c.segIdx); n > 0 && c.segIdx[n-1] == idx {
		return
	}
	c.starts = append(c.starts, start)
	c.segIdx = append(c.segIdx, idx)
}

// Lookup returns the value of the longest stored prefix containing a.
// ok is false if no stored prefix contains a. It performs no allocation
// and is safe for concurrent use.
func (c *Compiled[V]) Lookup(a Addr) (val V, ok bool) {
	// Stage 1: direct-index the top 16 bits to a narrow segment window.
	chunk := uint32(a) >> 16
	i, j := int(c.first[chunk]), int(c.first[chunk+1])
	// Stage 2: rightmost segment with starts[i] <= a inside the window;
	// if none starts within this chunk the match is the segment carried
	// in from below (i-1). starts[0] == 0 guarantees i-1 >= 0.
	starts := c.starts
	for i < j {
		h := int(uint(i+j) >> 1)
		if starts[h] <= a {
			i = h + 1
		} else {
			j = h
		}
	}
	idx := c.segIdx[i-1]
	if idx < 0 {
		return val, false
	}
	return c.values[idx], true
}

// LookupPrefix returns the value stored for exactly p, mirroring
// Table.LookupPrefix.
func (c *Compiled[V]) LookupPrefix(p Prefix) (val V, ok bool) {
	// prefixes is sorted by (Addr, Bits); binary search for p.
	i, j := 0, len(c.prefixes)
	for i < j {
		h := int(uint(i+j) >> 1)
		q := c.prefixes[h]
		if q.Addr < p.Addr || (q.Addr == p.Addr && q.Bits < p.Bits) {
			i = h + 1
		} else {
			j = h
		}
	}
	if i < len(c.prefixes) && c.prefixes[i] == p {
		return c.values[i], true
	}
	return val, false
}

// Len returns the number of prefixes stored.
func (c *Compiled[V]) Len() int { return len(c.prefixes) }

// Segments returns the number of flattened address ranges backing Lookup
// (diagnostic: at most 2·Len()+1).
func (c *Compiled[V]) Segments() int { return len(c.starts) }

// Walk visits every stored (prefix, value) pair in the same lexicographic
// order as Table.Walk. Returning false from fn stops the walk.
func (c *Compiled[V]) Walk(fn func(Prefix, V) bool) {
	for i, p := range c.prefixes {
		if !fn(p, c.values[i]) {
			return
		}
	}
}

// Dump exposes the compiled form's canonical arrays for serialization:
// the stored (prefix, value) pairs in Walk order and the flattened LPM
// segments (ascending start addresses with, per segment, the index of
// the matching prefix or -1). The returned slices are copies; mutating
// them does not affect the compiled table. The direct top-16-bit index
// is derived state and deliberately not exposed — CompiledFromDump
// rebuilds it.
func (c *Compiled[V]) Dump() (prefixes []Prefix, values []V, starts []Addr, segIdx []int32) {
	prefixes = append([]Prefix(nil), c.prefixes...)
	values = append([]V(nil), c.values...)
	starts = append([]Addr(nil), c.starts...)
	segIdx = append([]int32(nil), c.segIdx...)
	return prefixes, values, starts, segIdx
}

// CompiledFromDump reconstructs a Compiled table from the arrays Dump
// produced, validating every structural invariant a malformed or
// corrupted dump could violate — prefix canonical form and ordering,
// segment start monotonicity (starts[0] must be 0), and segment index
// range — before rebuilding the derived top-16-bit direct index. A dump
// that round-trips Dump→CompiledFromDump answers every Lookup,
// LookupPrefix, and Walk identically to the original.
func CompiledFromDump[V any](prefixes []Prefix, values []V, starts []Addr, segIdx []int32) (*Compiled[V], error) {
	if len(prefixes) != len(values) {
		return nil, fmt.Errorf("ipnet: dump has %d prefixes but %d values", len(prefixes), len(values))
	}
	if len(starts) != len(segIdx) {
		return nil, fmt.Errorf("ipnet: dump has %d segment starts but %d segment indices", len(starts), len(segIdx))
	}
	if len(starts) == 0 || starts[0] != 0 {
		return nil, fmt.Errorf("ipnet: dump segment list must begin with a segment at address 0")
	}
	if len(starts) > 2*len(prefixes)+1 {
		return nil, fmt.Errorf("ipnet: dump has %d segments for %d prefixes (max %d)",
			len(starts), len(prefixes), 2*len(prefixes)+1)
	}
	for i, p := range prefixes {
		if p.Bits < 0 || p.Bits > 32 {
			return nil, fmt.Errorf("ipnet: dump prefix %d has invalid length /%d", i, p.Bits)
		}
		if p.Addr&mask(p.Bits) != p.Addr {
			return nil, fmt.Errorf("ipnet: dump prefix %d (%s) has host bits set", i, p)
		}
		if i > 0 {
			q := prefixes[i-1]
			if p.Addr < q.Addr || (p.Addr == q.Addr && p.Bits <= q.Bits) {
				return nil, fmt.Errorf("ipnet: dump prefixes out of Walk order at %d (%s after %s)", i, p, q)
			}
		}
	}
	for k, idx := range segIdx {
		if k > 0 && starts[k] <= starts[k-1] {
			return nil, fmt.Errorf("ipnet: dump segment starts not strictly ascending at %d", k)
		}
		if idx < -1 || int(idx) >= len(prefixes) {
			return nil, fmt.Errorf("ipnet: dump segment %d references prefix %d of %d", k, idx, len(prefixes))
		}
		if idx >= 0 && !prefixes[idx].Contains(starts[k]) {
			return nil, fmt.Errorf("ipnet: dump segment %d start %s outside its prefix %s", k, starts[k], prefixes[idx])
		}
	}
	c := &Compiled[V]{
		prefixes: append([]Prefix(nil), prefixes...),
		values:   append([]V(nil), values...),
		starts:   append([]Addr(nil), starts...),
		segIdx:   append([]int32(nil), segIdx...),
	}
	c.first = make([]int32, (1<<16)+1)
	ch := 1
	for k := 1; k < len(c.starts); k++ {
		for sc := int(c.starts[k] >> 16); ch <= sc; ch++ {
			c.first[ch] = int32(k)
		}
	}
	for ; ch <= 1<<16; ch++ {
		c.first[ch] = int32(len(c.starts))
	}
	return c, nil
}
