package ipnet

// Table is a binary radix trie mapping prefixes to values of type V, with
// longest-prefix-match lookup — the data structure behind the synthetic
// RouteViews-style IP→AS resolution.
type Table[V any] struct {
	root *node[V]
	size int
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// NewTable returns an empty table.
func NewTable[V any]() *Table[V] { return &Table[V]{root: &node[V]{}} }

// Len returns the number of prefixes stored.
func (t *Table[V]) Len() int { return t.size }

func bitAt(a Addr, i int) int { return int(a>>(31-i)) & 1 }

// Insert stores val under p, replacing any existing value for exactly p.
func (t *Table[V]) Insert(p Prefix, val V) {
	n := t.root
	for i := 0; i < p.Bits; i++ {
		b := bitAt(p.Addr, i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val = val
	n.set = true
}

// Lookup returns the value of the longest prefix containing a. ok is false
// if no stored prefix contains a.
func (t *Table[V]) Lookup(a Addr) (val V, ok bool) {
	n := t.root
	if n.set {
		val, ok = n.val, true
	}
	for i := 0; i < 32; i++ {
		n = n.child[bitAt(a, i)]
		if n == nil {
			return val, ok
		}
		if n.set {
			val, ok = n.val, true
		}
	}
	return val, ok
}

// LookupPrefix returns the value stored for exactly p.
func (t *Table[V]) LookupPrefix(p Prefix) (val V, ok bool) {
	n := t.root
	for i := 0; i < p.Bits; i++ {
		n = n.child[bitAt(p.Addr, i)]
		if n == nil {
			var zero V
			return zero, false
		}
	}
	return n.val, n.set
}

// Walk visits every stored (prefix, value) pair in lexicographic prefix
// order (ascending address, then ascending length — so an enclosing prefix
// is always visited before the prefixes nested inside it). Returning false
// from fn stops the walk.
func (t *Table[V]) Walk(fn func(Prefix, V) bool) {
	var rec func(n *node[V], addr Addr, bits int) bool
	rec = func(n *node[V], addr Addr, bits int) bool {
		if n.set && !fn(Prefix{Addr: addr, Bits: bits}, n.val) {
			return false
		}
		// The child-address shift is computed only after the nil check:
		// at bits == 32 (a stored /32 leaf) the expression 1<<(31-bits)
		// would be a negative shift and panic at run time — but a /32
		// node can never have children, so the guard also makes the
		// arithmetic unreachable for it.
		if c := n.child[0]; c != nil && !rec(c, addr, bits+1) {
			return false
		}
		if c := n.child[1]; c != nil {
			return rec(c, addr|Addr(1)<<(31-bits), bits+1)
		}
		return true
	}
	if t.root != nil {
		rec(t.root, 0, 0)
	}
}
