package ipnet

import (
	"testing"
	"testing/quick"
)

func TestAddrStringParse(t *testing.T) {
	cases := []struct {
		s string
		a Addr
	}{
		{"0.0.0.0", 0},
		{"1.2.3.4", MakeAddr(1, 2, 3, 4)},
		{"255.255.255.255", 0xFFFFFFFF},
		{"192.168.0.1", MakeAddr(192, 168, 0, 1)},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.s)
		if err != nil || got != c.a {
			t.Errorf("ParseAddr(%q) = %v, %v", c.s, got, err)
		}
		if c.a.String() != c.s {
			t.Errorf("String(%v) = %q, want %q", c.a, c.a.String(), c.s)
		}
	}
}

func TestParseAddrErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "-1.0.0.0", "a.b.c.d", "01.2.3.4", "1.2.3.4/8"} {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) succeeded", s)
		}
	}
}

func TestParseAddrRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		got, err := ParseAddr(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixBasics(t *testing.T) {
	p, err := ParsePrefix("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(MakeAddr(10, 255, 1, 2)) {
		t.Error("10/8 should contain 10.255.1.2")
	}
	if p.Contains(MakeAddr(11, 0, 0, 0)) {
		t.Error("10/8 should not contain 11.0.0.0")
	}
	if p.NumAddrs() != 1<<24 {
		t.Errorf("NumAddrs = %d", p.NumAddrs())
	}
	if p.First() != MakeAddr(10, 0, 0, 0) || p.Last() != MakeAddr(10, 255, 255, 255) {
		t.Errorf("First/Last = %v/%v", p.First(), p.Last())
	}
	if p.String() != "10.0.0.0/8" {
		t.Errorf("String = %q", p.String())
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, s := range []string{"", "10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0.1/8", "x/8"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded", s)
		}
	}
}

func TestMakePrefixCanonicalizes(t *testing.T) {
	p := MakePrefix(MakeAddr(10, 1, 2, 3), 8)
	if p.Addr != MakeAddr(10, 0, 0, 0) {
		t.Errorf("host bits not zeroed: %v", p)
	}
	zero := MakePrefix(MakeAddr(1, 2, 3, 4), 0)
	if zero.Addr != 0 || zero.NumAddrs() != 1<<32 {
		t.Errorf("/0 wrong: %v", zero)
	}
}

func TestOverlaps(t *testing.T) {
	a, _ := ParsePrefix("10.0.0.0/8")
	b, _ := ParsePrefix("10.1.0.0/16")
	c, _ := ParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("disjoint prefixes should not overlap")
	}
	if !a.Overlaps(a) {
		t.Error("prefix should overlap itself")
	}
}

func TestHalves(t *testing.T) {
	p, _ := ParsePrefix("10.0.0.0/8")
	lo, hi := p.Halves()
	if lo.String() != "10.0.0.0/9" || hi.String() != "10.128.0.0/9" {
		t.Errorf("Halves = %v, %v", lo, hi)
	}
	if lo.Overlaps(hi) {
		t.Error("halves overlap")
	}
}

func TestNth(t *testing.T) {
	p, _ := ParsePrefix("10.0.0.0/24")
	if p.Nth(0) != MakeAddr(10, 0, 0, 0) || p.Nth(255) != MakeAddr(10, 0, 0, 255) {
		t.Error("Nth endpoints wrong")
	}
	if p.Nth(256) != p.Nth(0) {
		t.Error("Nth should wrap within the prefix")
	}
}

func TestAllocatorDisjointAndUnreserved(t *testing.T) {
	al := NewAllocator()
	var prefixes []Prefix
	for i := 0; i < 200; i++ {
		bits := 14 + i%6
		p, err := al.Alloc(bits)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if p.Addr&^(^Addr(0)<<(32-bits)) != 0 {
			t.Errorf("unaligned prefix %v", p)
		}
		prefixes = append(prefixes, p)
	}
	for i := range prefixes {
		for _, r := range reservedRanges {
			if prefixes[i].Overlaps(r) {
				t.Errorf("%v overlaps reserved %v", prefixes[i], r)
			}
		}
		for j := i + 1; j < len(prefixes); j++ {
			if prefixes[i].Overlaps(prefixes[j]) {
				t.Errorf("%v overlaps %v", prefixes[i], prefixes[j])
			}
		}
	}
}

func TestAllocatorSkipsReserved(t *testing.T) {
	al := NewAllocator()
	// Drain allocations until we pass 10/8; none may fall inside it.
	for i := 0; i < 40; i++ {
		p, err := al.Alloc(10)
		if err != nil {
			t.Fatal(err)
		}
		ten, _ := ParsePrefix("10.0.0.0/8")
		if p.Overlaps(ten) {
			t.Fatalf("allocated %v inside 10/8", p)
		}
	}
}

func TestAllocatorBounds(t *testing.T) {
	al := NewAllocator()
	if _, err := al.Alloc(7); err == nil {
		t.Error("Alloc(7) should fail")
	}
	if _, err := al.Alloc(31); err == nil {
		t.Error("Alloc(31) should fail")
	}
}

func TestOverlapsSymmetricProperty(t *testing.T) {
	f := func(a32, b32 uint32, aBitsSeed, bBitsSeed uint8) bool {
		a := MakePrefix(Addr(a32), int(aBitsSeed%33))
		b := MakePrefix(Addr(b32), int(bBitsSeed%33))
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHalvesPartitionProperty(t *testing.T) {
	// The two halves are disjoint, each inside the parent, and their
	// sizes sum to the parent's.
	f := func(a32 uint32, bitsSeed uint8) bool {
		bits := int(bitsSeed % 32) // 0..31, splittable
		p := MakePrefix(Addr(a32), bits)
		lo, hi := p.Halves()
		if lo.Overlaps(hi) {
			return false
		}
		if !p.Contains(lo.First()) || !p.Contains(lo.Last()) ||
			!p.Contains(hi.First()) || !p.Contains(hi.Last()) {
			return false
		}
		return lo.NumAddrs()+hi.NumAddrs() == p.NumAddrs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContainsConsistentWithRange(t *testing.T) {
	f := func(a32, probe uint32, bitsSeed uint8) bool {
		p := MakePrefix(Addr(a32), int(bitsSeed%33))
		in := Addr(probe) >= p.First() && Addr(probe) <= p.Last()
		return p.Contains(Addr(probe)) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
