package ipnet

import "testing"

// FuzzParseAddr exercises the address parser: it must never panic, and
// anything it accepts must round-trip through String.
func FuzzParseAddr(f *testing.F) {
	for _, seed := range []string{"0.0.0.0", "255.255.255.255", "1.2.3.4", "", "1.2.3", "999.1.1.1", "a.b.c.d", "01.2.3.4"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		round, err := ParseAddr(a.String())
		if err != nil || round != a {
			t.Fatalf("round trip failed for %q -> %v", s, a)
		}
	})
}

// FuzzParsePrefix exercises the prefix parser the same way.
func FuzzParsePrefix(f *testing.F) {
	for _, seed := range []string{"10.0.0.0/8", "0.0.0.0/0", "1.2.3.4/32", "10.0.0.1/8", "x/8", "10.0.0.0/33", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		round, err := ParsePrefix(p.String())
		if err != nil || round != p {
			t.Fatalf("round trip failed for %q -> %v", s, p)
		}
		// Accepted prefixes are canonical.
		if p.Addr&^(^Addr(0)<<(32-p.Bits)) != 0 && p.Bits < 32 {
			t.Fatalf("non-canonical prefix accepted: %v", p)
		}
	})
}
