package ipnet

import (
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzParseAddr exercises the address parser: it must never panic, and
// anything it accepts must round-trip through String.
func FuzzParseAddr(f *testing.F) {
	for _, seed := range []string{"0.0.0.0", "255.255.255.255", "1.2.3.4", "", "1.2.3", "999.1.1.1", "a.b.c.d", "01.2.3.4"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		round, err := ParseAddr(a.String())
		if err != nil || round != a {
			t.Fatalf("round trip failed for %q -> %v", s, a)
		}
	})
}

// FuzzParsePrefix exercises the prefix parser the same way, and pushes
// every accepted prefix — the corpus includes /0 and /32 — through a
// table insert + Walk, which used to panic on /32 (negative shift).
func FuzzParsePrefix(f *testing.F) {
	for _, seed := range []string{
		"10.0.0.0/8", "0.0.0.0/0", "1.2.3.4/32", "10.0.0.1/8", "x/8", "10.0.0.0/33", "",
		"255.255.255.255/32", "255.255.255.254/31", "128.0.0.0/1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		round, err := ParsePrefix(p.String())
		if err != nil || round != p {
			t.Fatalf("round trip failed for %q -> %v", s, p)
		}
		// Accepted prefixes are canonical.
		if p.Addr&^(^Addr(0)<<(32-p.Bits)) != 0 && p.Bits < 32 {
			t.Fatalf("non-canonical prefix accepted: %v", p)
		}
		// Any accepted prefix must survive a store-and-walk alongside the
		// extreme lengths.
		tb := NewTable[int]()
		tb.Insert(p, 1)
		tb.Insert(Prefix{Addr: 0, Bits: 0}, 2)
		tb.Insert(Prefix{Addr: p.Addr, Bits: 32}, 3)
		visited := 0
		var prev Prefix
		tb.Walk(func(q Prefix, _ int) bool {
			if visited > 0 && (q.Addr < prev.Addr || (q.Addr == prev.Addr && q.Bits <= prev.Bits)) {
				t.Fatalf("walk order violated: %v after %v", q, prev)
			}
			prev = q
			visited++
			return true
		})
		if visited != tb.Len() {
			t.Fatalf("walk visited %d of %d entries", visited, tb.Len())
		}
		if v, ok := tb.Lookup(p.Addr); !ok || v != 3 {
			t.Fatalf("host route shadowing failed: %v, %v", v, ok)
		}
	})
}

// FuzzCompiledVsTable is the differential target for the compiled LPM
// form: random insert sets — including /0 and /32, duplicate prefixes,
// and adjacent/nested ranges — must produce a Compiled whose Lookup,
// LookupPrefix, Len, and Walk agree exactly with the mutable trie, and
// whose re-Compile is bit-for-bit deterministic.
func FuzzCompiledVsTable(f *testing.F) {
	mk := func(prefixes ...string) []byte {
		var b []byte
		for _, s := range prefixes {
			p, err := ParsePrefix(s)
			if err != nil {
				panic(err)
			}
			var rec [5]byte
			binary.BigEndian.PutUint32(rec[:4], uint32(p.Addr))
			rec[4] = byte(p.Bits)
			b = append(b, rec[:]...)
		}
		return b
	}
	f.Add(mk("0.0.0.0/0"))
	f.Add(mk("255.255.255.255/32"))
	f.Add(mk("0.0.0.0/0", "10.0.0.0/8", "10.0.0.0/9", "10.128.0.0/9", "10.1.2.3/32"))
	f.Add(mk("1.0.0.0/8", "2.0.0.0/8", "1.255.255.255/32", "2.0.0.0/32"))
	f.Add(mk("128.0.0.0/1", "0.0.0.0/1", "0.0.0.0/0"))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3}) // trailing partial record: ignored

	f.Fuzz(func(t *testing.T, data []byte) {
		tb := NewTable[int]()
		for i := 0; i+5 <= len(data) && i < 5*256; i += 5 {
			addr := Addr(binary.BigEndian.Uint32(data[i : i+4]))
			bits := int(data[i+4]) % 33 // full /0..=/32 range
			tb.Insert(MakePrefix(addr, bits), i/5)
		}
		c := tb.Compile()

		if c.Len() != tb.Len() {
			t.Fatalf("Len: compiled %d vs trie %d", c.Len(), tb.Len())
		}
		if c.Segments() > 2*c.Len()+1 {
			t.Fatalf("segment bound violated: %d segments for %d prefixes", c.Segments(), c.Len())
		}

		// Walk must agree element-for-element.
		type pair struct {
			p Prefix
			v int
		}
		var wt, wc []pair
		tb.Walk(func(p Prefix, v int) bool { wt = append(wt, pair{p, v}); return true })
		c.Walk(func(p Prefix, v int) bool { wc = append(wc, pair{p, v}); return true })
		if !reflect.DeepEqual(wt, wc) {
			t.Fatalf("walk mismatch:\ntrie:     %v\ncompiled: %v", wt, wc)
		}

		// Lookup must agree on every segment boundary ±1, every stored
		// prefix's first/last, and a spread of interior points.
		probe := func(a Addr) {
			v1, ok1 := tb.Lookup(a)
			v2, ok2 := c.Lookup(a)
			if ok1 != ok2 || v1 != v2 {
				t.Fatalf("Lookup(%v): trie %v,%v vs compiled %v,%v", a, v1, ok1, v2, ok2)
			}
		}
		for _, s := range c.starts {
			probe(s - 1)
			probe(s)
			probe(s + 1)
		}
		for _, e := range wt {
			probe(e.p.First())
			probe(e.p.Last())
			probe(e.p.Nth(e.p.NumAddrs() / 2))
			if v, ok := c.LookupPrefix(e.p); !ok || v != e.v {
				t.Fatalf("LookupPrefix(%v) = %v, %v; want %v", e.p, v, ok, e.v)
			}
		}
		probe(0)
		probe(maxAddr)

		// Re-Compile determinism. The segment arrays are compared
		// explicitly (cheaper under fuzz instrumentation than reflecting
		// over the whole struct); the chunk index is a pure function of
		// starts, so segment equality implies index equality.
		c2 := tb.Compile()
		if len(c.starts) != len(c2.starts) || len(c.prefixes) != len(c2.prefixes) {
			t.Fatal("re-Compile changed sizes")
		}
		for i := range c.starts {
			if c.starts[i] != c2.starts[i] || c.segIdx[i] != c2.segIdx[i] {
				t.Fatalf("re-Compile differs at segment %d", i)
			}
		}
		for i := range c.prefixes {
			if c.prefixes[i] != c2.prefixes[i] || c.values[i] != c2.values[i] {
				t.Fatalf("re-Compile differs at prefix %d", i)
			}
		}
	})
}
