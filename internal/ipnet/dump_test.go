package ipnet

import (
	"strings"
	"testing"
)

func dumpTable(t *testing.T) *Compiled[int] {
	t.Helper()
	tbl := NewTable[int]()
	for i, s := range []string{
		"0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24",
		"172.16.0.0/12", "192.168.0.0/16", "192.168.1.0/24", "255.255.255.255/32",
	} {
		p, err := ParsePrefix(s)
		if err != nil {
			t.Fatalf("ParsePrefix(%s): %v", s, err)
		}
		tbl.Insert(p, i)
	}
	return tbl.Compile()
}

// TestDumpRoundTrip proves Dump → CompiledFromDump reproduces the
// compiled table exactly: same arrays, same derived index behaviour,
// identical answers for every probe.
func TestDumpRoundTrip(t *testing.T) {
	c := dumpTable(t)
	re, err := CompiledFromDump(c.Dump())
	if err != nil {
		t.Fatalf("CompiledFromDump: %v", err)
	}
	if re.Len() != c.Len() || re.Segments() != c.Segments() {
		t.Fatalf("shape: got (%d,%d) want (%d,%d)", re.Len(), re.Segments(), c.Len(), c.Segments())
	}
	// Sweep a dense sample of the space plus all segment boundaries.
	_, _, starts, _ := c.Dump()
	probes := append([]Addr(nil), starts...)
	for _, s := range starts {
		if s > 0 {
			probes = append(probes, s-1)
		}
		probes = append(probes, s+1)
	}
	for a := uint64(0); a <= uint64(maxAddr); a += 1<<22 + 12347 {
		probes = append(probes, Addr(a))
	}
	probes = append(probes, maxAddr)
	for _, a := range probes {
		wv, wok := c.Lookup(a)
		gv, gok := re.Lookup(a)
		if wv != gv || wok != gok {
			t.Fatalf("Lookup(%s): got (%d,%v) want (%d,%v)", a, gv, gok, wv, wok)
		}
	}
	c.Walk(func(p Prefix, v int) bool {
		gv, ok := re.LookupPrefix(p)
		if !ok || gv != v {
			t.Fatalf("LookupPrefix(%s): got (%d,%v) want (%d,true)", p, gv, ok, v)
		}
		return true
	})
}

// TestCompiledFromDumpRejectsInvalid feeds structurally damaged dumps
// and requires each to be rejected with a descriptive error — the
// validation layer the snapshot reader relies on for LPM payloads.
func TestCompiledFromDumpRejectsInvalid(t *testing.T) {
	c := dumpTable(t)
	p, v, s, i := c.Dump()
	cases := map[string]func() error{
		"length mismatch values": func() error {
			_, err := CompiledFromDump(p, v[:len(v)-1], s, i)
			return err
		},
		"length mismatch segments": func() error {
			_, err := CompiledFromDump(p, v, s, i[:len(i)-1])
			return err
		},
		"empty segments": func() error {
			_, err := CompiledFromDump(p, v, nil, nil)
			return err
		},
		"first segment not zero": func() error {
			s2 := append([]Addr(nil), s...)
			s2[0] = 5
			_, err := CompiledFromDump(p, v, s2, i)
			return err
		},
		"too many segments": func() error {
			s2 := append([]Addr(nil), s...)
			i2 := append([]int32(nil), i...)
			for len(s2) <= 2*len(p)+1 {
				s2 = append(s2, s2[len(s2)-1]+1)
				i2 = append(i2, -1)
			}
			_, err := CompiledFromDump(p, v, s2, i2)
			return err
		},
		"host bits set": func() error {
			p2 := append([]Prefix(nil), p...)
			p2[1] = Prefix{Addr: p2[1].Addr | 1, Bits: p2[1].Bits}
			_, err := CompiledFromDump(p2, v, s, i)
			return err
		},
		"bits out of range": func() error {
			p2 := append([]Prefix(nil), p...)
			p2[0] = Prefix{Addr: p2[0].Addr, Bits: 33}
			_, err := CompiledFromDump(p2, v, s, i)
			return err
		},
		"prefixes out of order": func() error {
			p2 := append([]Prefix(nil), p...)
			p2[1], p2[2] = p2[2], p2[1]
			_, err := CompiledFromDump(p2, v, s, i)
			return err
		},
		"starts not ascending": func() error {
			s2 := append([]Addr(nil), s...)
			s2[2] = s2[1]
			_, err := CompiledFromDump(p, v, s2, i)
			return err
		},
		"segment index out of range": func() error {
			i2 := append([]int32(nil), i...)
			i2[1] = int32(len(p))
			_, err := CompiledFromDump(p, v, s, i2)
			return err
		},
		"segment index below -1": func() error {
			i2 := append([]int32(nil), i...)
			i2[1] = -2
			_, err := CompiledFromDump(p, v, s, i2)
			return err
		},
		"start outside its prefix": func() error {
			// Point a segment in the 10.0.0.0/8 range at the
			// 192.168.0.0/16 prefix.
			s2 := append([]Addr(nil), s...)
			i2 := append([]int32(nil), i...)
			var tenIdx, pIdx int32 = -1, -1
			for k, start := range s2 {
				if start == MakeAddr(10, 0, 0, 0) {
					tenIdx = int32(k)
				}
			}
			for j, q := range p {
				if q.Addr == MakeAddr(192, 168, 0, 0) && q.Bits == 16 {
					pIdx = int32(j)
				}
			}
			if tenIdx < 0 || pIdx < 0 {
				t.Fatal("test fixture lost its prefixes")
			}
			i2[tenIdx] = pIdx
			_, err := CompiledFromDump(p, v, s2, i2)
			return err
		},
	}
	for name, fn := range cases {
		if err := fn(); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !strings.HasPrefix(err.Error(), "ipnet: ") {
			t.Errorf("%s: error %q missing ipnet prefix", name, err)
		}
	}
}
