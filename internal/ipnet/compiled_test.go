package ipnet

import (
	"reflect"
	"testing"
	"testing/quick"
)

// TestWalkExtremePrefixLengths is the regression test for the /32
// negative-shift panic: Walk over a table holding /0, /31, and /32
// entries must visit all of them in lexicographic order without
// panicking.
func TestWalkExtremePrefixLengths(t *testing.T) {
	tb := NewTable[string]()
	host, _ := ParseAddr("1.2.3.4")
	entries := []struct {
		p Prefix
		v string
	}{
		{Prefix{Addr: 0, Bits: 0}, "default"},
		{MakePrefix(host, 31), "p31"},
		{Prefix{Addr: host, Bits: 32}, "host"},
		{Prefix{Addr: maxAddr, Bits: 32}, "top"},
	}
	for _, e := range entries {
		tb.Insert(e.p, e.v)
	}
	var got []string
	tb.Walk(func(p Prefix, v string) bool {
		got = append(got, p.String()+"="+v)
		return true
	})
	want := []string{
		"0.0.0.0/0=default",
		"1.2.3.4/31=p31",
		"1.2.3.4/32=host",
		"255.255.255.255/32=top",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("walk = %v, want %v", got, want)
	}
	// Early stop still works with a /32 present.
	n := 0
	tb.Walk(func(Prefix, string) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestCompiledEmpty(t *testing.T) {
	c := NewTable[int]().Compile()
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
	if _, ok := c.Lookup(MakeAddr(1, 2, 3, 4)); ok {
		t.Error("empty compiled table matched")
	}
	if _, ok := c.LookupPrefix(MakePrefix(0, 8)); ok {
		t.Error("empty compiled table matched a prefix")
	}
	c.Walk(func(Prefix, int) bool { t.Error("walk visited on empty"); return true })
}

func TestCompiledLongestPrefixMatch(t *testing.T) {
	tb := NewTable[string]()
	tb.Insert(mustPrefix(t, "10.0.0.0/8"), "big")
	tb.Insert(mustPrefix(t, "10.1.0.0/16"), "mid")
	tb.Insert(mustPrefix(t, "10.1.2.0/24"), "small")
	c := tb.Compile()

	for _, tc := range []struct {
		addr string
		want string
		ok   bool
	}{
		{"10.1.2.3", "small", true},
		{"10.1.9.9", "mid", true},
		{"10.9.9.9", "big", true},
		{"10.1.2.255", "small", true},
		{"10.1.3.0", "mid", true},
		{"9.255.255.255", "", false},
		{"11.0.0.0", "", false},
		{"0.0.0.0", "", false},
		{"255.255.255.255", "", false},
	} {
		a, _ := ParseAddr(tc.addr)
		got, ok := c.Lookup(a)
		if ok != tc.ok || got != tc.want {
			t.Errorf("Lookup(%s) = %q, %v; want %q, %v", tc.addr, got, ok, tc.want, tc.ok)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCompiledDefaultRouteAndHostRoutes(t *testing.T) {
	tb := NewTable[int]()
	tb.Insert(Prefix{Addr: 0, Bits: 0}, 1) // default route: /0 at the sweep origin
	host, _ := ParseAddr("200.1.1.1")
	tb.Insert(Prefix{Addr: host, Bits: 32}, 2)
	tb.Insert(Prefix{Addr: maxAddr, Bits: 32}, 3) // /32 at the very top of the space
	c := tb.Compile()

	if v, ok := c.Lookup(0); !ok || v != 1 {
		t.Errorf("Lookup(0) = %v, %v", v, ok)
	}
	if v, ok := c.Lookup(host); !ok || v != 2 {
		t.Errorf("Lookup(host) = %v, %v", v, ok)
	}
	if v, ok := c.Lookup(host - 1); !ok || v != 1 {
		t.Errorf("Lookup(host-1) = %v, %v (default route should resume)", v, ok)
	}
	if v, ok := c.Lookup(host + 1); !ok || v != 1 {
		t.Errorf("Lookup(host+1) = %v, %v (default route should resume)", v, ok)
	}
	if v, ok := c.Lookup(maxAddr); !ok || v != 3 {
		t.Errorf("Lookup(max) = %v, %v", v, ok)
	}
}

func TestCompiledSnapshotSemantics(t *testing.T) {
	tb := NewTable[int]()
	tb.Insert(mustPrefix(t, "10.0.0.0/8"), 1)
	c := tb.Compile()
	tb.Insert(mustPrefix(t, "10.1.0.0/16"), 2)
	a, _ := ParseAddr("10.1.0.1")
	if v, _ := c.Lookup(a); v != 1 {
		t.Errorf("compiled view saw a post-Compile insert: %d", v)
	}
	if c.Len() != 1 {
		t.Errorf("compiled Len changed: %d", c.Len())
	}
}

func TestCompiledRecompileDeterministic(t *testing.T) {
	tb := NewTable[int]()
	al := NewAllocator()
	for i := 0; i < 500; i++ {
		p, err := al.Alloc(16 + i%8)
		if err != nil {
			t.Fatal(err)
		}
		tb.Insert(p, i)
	}
	tb.Insert(Prefix{Addr: 0, Bits: 0}, -7)
	c1, c2 := tb.Compile(), tb.Compile()
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("re-Compile produced a different structure")
	}
}

// TestCompiledMatchesTable cross-checks the compiled form against the
// trie over random prefix sets covering the full /0..=/32 length range,
// on probes at and around every segment boundary.
func TestCompiledMatchesTable(t *testing.T) {
	f := func(seeds []uint64, probes []uint32) bool {
		if len(seeds) > 128 {
			seeds = seeds[:128]
		}
		tb := NewTable[int]()
		for i, s := range seeds {
			tb.Insert(MakePrefix(Addr(s), int(s>>32)%33), i)
		}
		c := tb.Compile()
		if c.Len() != tb.Len() {
			return false
		}
		// Probe random addresses plus every boundary ±1.
		addrs := make([]Addr, 0, len(probes)+3*len(c.starts))
		for _, p := range probes {
			addrs = append(addrs, Addr(p))
		}
		for _, s := range c.starts {
			addrs = append(addrs, s-1, s, s+1)
		}
		for _, a := range addrs {
			v1, ok1 := tb.Lookup(a)
			v2, ok2 := c.Lookup(a)
			if ok1 != ok2 || v1 != v2 {
				t.Logf("Lookup(%v) trie=%v,%v compiled=%v,%v", a, v1, ok1, v2, ok2)
				return false
			}
		}
		// Walk agreement, and exact-prefix agreement on every entry.
		type pair struct {
			p Prefix
			v int
		}
		var wt, wc []pair
		tb.Walk(func(p Prefix, v int) bool { wt = append(wt, pair{p, v}); return true })
		c.Walk(func(p Prefix, v int) bool { wc = append(wc, pair{p, v}); return true })
		if !reflect.DeepEqual(wt, wc) {
			return false
		}
		for _, e := range wt {
			if v, ok := c.LookupPrefix(e.p); !ok || v != e.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompiledSegmentBound(t *testing.T) {
	tb := NewTable[int]()
	al := NewAllocator()
	for i := 0; i < 1000; i++ {
		p, err := al.Alloc(16 + i%8)
		if err != nil {
			t.Fatal(err)
		}
		tb.Insert(p, i)
	}
	c := tb.Compile()
	if c.Segments() > 2*c.Len()+1 {
		t.Fatalf("segment bound violated: %d segments for %d prefixes", c.Segments(), c.Len())
	}
}
