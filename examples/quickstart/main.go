// Quickstart: generate a synthetic Internet, run the paper's measurement
// pipeline, and estimate the geo- and PoP-level footprint of one eyeball
// AS — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"eyeballas"
)

func main() {
	log.SetFlags(0)

	// 1. A ground-truth synthetic Internet (test scale: ~60 eyeball
	//    ASes; use GenerateWorld for the full ~650-AS scale).
	world, err := eyeball.GenerateSmallWorld(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d ASes, %d IXPs\n", world.Stats().ASes, world.Stats().IXPs)

	// 2. The paper's §2 pipeline: crawl three P2P systems, geolocate
	//    every peer with two databases, group by AS via BGP tables, and
	//    condition (error and size filters).
	dataset, err := eyeball.BuildTargetDataset(world, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target dataset: %d eligible eyeball ASes, %d usable peers\n\n",
		len(dataset.Records()), dataset.TotalPeers)

	// 3. The paper's contribution (§3–§4): a KDE-based geo-footprint and
	//    the PoP-level footprint for the best-sampled AS.
	best := dataset.Records()[0]
	for _, rec := range dataset.Records() {
		if len(rec.Samples) > len(best.Samples) {
			best = rec
		}
	}
	fp, err := eyeball.EstimateFootprint(world, best.Samples, eyeball.FootprintOptions{})
	if err != nil {
		log.Fatal(err)
	}
	a := world.AS(best.ASN)
	fmt.Printf("AS %d (%s): %d peers, classified %s-level (%s)\n",
		best.ASN, a.Name, len(best.Samples), best.Class.Level, best.Class.Place)
	fmt.Printf("PoP-level footprint at %g km bandwidth:\n  %s\n",
		fp.Bandwidth, fp.CityList())
	fmt.Printf("footprint has %d partition(s); %d density peak(s), %d mapped to no city\n",
		len(fp.Partitions), len(fp.Peaks), fp.NoCityPeaks)

	// 4. Ground truth is available for every synthetic AS — compare.
	fmt.Println("\nground-truth PoP cities:")
	for _, p := range a.PoPs {
		marker := " "
		for _, d := range fp.PoPs {
			if d.City.Name == p.City.Name {
				marker = "*"
				break
			}
		}
		fmt.Printf("  %s %-18s share %.2f servesUsers=%v\n", marker, p.City.Name, p.Share, p.ServesUsers)
	}
	fmt.Println("(* = discovered by the KDE footprint)")
}
