// future-work runs the four studies the paper defers to future work,
// implemented as extensions of this reproduction:
//
//   - multi-scale PoP refinement (§5): combine bandwidths to split nearby
//     PoPs without inheriting the fine bandwidth's unreliability;
//   - sampling-bias sensitivity (§4.3): mild bias distorts densities,
//     significant bias hides PoPs;
//   - edge + traceroute fusion (§7): the two views are complementary;
//   - geography→connectivity prediction (§1): how far does a footprint
//     go in predicting upstreams and exchange presence?
package main

import (
	"fmt"
	"log"

	"eyeballas"
)

func main() {
	log.SetFlags(0)

	env, err := eyeball.NewSmallExperiments(42)
	if err != nil {
		log.Fatal(err)
	}

	ms, err := eyeball.RunMultiScale(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ms.Render())

	bi, err := eyeball.RunBias(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bi.Render())

	fu, err := eyeball.RunFusion(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fu.Render())

	pr, err := eyeball.RunPredict(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pr.Render())

	// The per-AS view of the multi-scale refinement, on the Figure 1
	// subject.
	f1, err := eyeball.RunFigure1(env, []float64{40})
	if err != nil {
		log.Fatal(err)
	}
	rec := env.Dataset.AS(f1.ASN)
	refined, err := eyeball.MultiScaleFootprint(env.World, rec.Samples, eyeball.MultiScaleOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-scale footprint of AS %d (%s):\n", f1.ASN, f1.Name)
	for _, p := range refined {
		fmt.Printf("  %-12s density %.3f  visible %2.0f-%2.0f km  persistence %d\n",
			p.City.Name, p.Density, p.FinestKm, p.CoarsestKm, p.Persistence)
	}
}
