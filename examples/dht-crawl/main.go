// dht-crawl demonstrates the protocol-level substrate behind the paper's
// Kad dataset: a simulated Kademlia overlay built from the synthetic
// world's end users, crawled zone by zone with iterative FIND_NODE
// lookups — the mechanism whose outcome the pipeline's statistical crawl
// model summarizes.
//
// The example sweeps the crawler's RPC budget to show how coverage (and
// therefore the per-AS peer samples the paper's method consumes) depends
// on crawl effort.
package main

import (
	"fmt"
	"log"

	"eyeballas"
	"eyeballas/internal/dht"
	"eyeballas/internal/ipnet"
	"eyeballas/internal/rng"
	"eyeballas/internal/users"
)

func main() {
	log.SetFlags(0)

	world, err := eyeball.GenerateSmallWorld(42)
	if err != nil {
		log.Fatal(err)
	}

	// Materialize the Kad population of the European eyeballs: each AS
	// contributes users proportional to its size (as the crawl model
	// does), each with a real address from the AS's prefixes.
	src := rng.New(42).Split("dht-example")
	placer := users.NewPlacer(world)
	var addrs []ipnet.Addr
	owner := map[ipnet.Addr]eyeball.ASN{}
	for _, a := range world.Eyeballs() {
		n := a.Customers / 100 // a Kad-penetration-sized slice
		if n == 0 {
			continue
		}
		for _, u := range placer.Materialize(a, n, src.SplitN("mat", int(a.ASN))) {
			addrs = append(addrs, u.IP)
			owner[u.IP] = a.ASN
		}
	}
	fmt.Printf("overlay population: %d Kad users across %d eyeball ASes\n",
		len(addrs), len(world.Eyeballs()))

	network, err := dht.Build(addrs, 10, src.Split("net"))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nRPC budget sweep (zone crawl, alpha=3, 64 zones):")
	fmt.Printf("  %-10s %10s %10s %10s\n", "budget", "RPCs", "nodes", "coverage")
	for _, budget := range []int{200, 1000, 5000, 0} {
		cfg := dht.DefaultCrawlConfig()
		cfg.RPCBudget = budget
		res, err := dht.Crawl(network, cfg, rng.New(7).Split("crawl"))
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d", budget)
		if budget == 0 {
			label = "unlimited"
		}
		fmt.Printf("  %-10s %10d %10d %9.1f%%\n",
			label, res.RPCs, len(res.Discovered), 100*res.Coverage(network))
	}

	// The crawl's output is exactly the paper's input: IP addresses
	// attributable to eyeball ASes. Show the per-AS sample counts the
	// unlimited crawl would hand to the pipeline.
	cfg := dht.DefaultCrawlConfig()
	res, err := dht.Crawl(network, cfg, rng.New(7).Split("crawl"))
	if err != nil {
		log.Fatal(err)
	}
	perAS := map[eyeball.ASN]int{}
	for _, addr := range res.Discovered {
		perAS[owner[addr]]++
	}
	fmt.Printf("\nunlimited crawl attributed peers to %d ASes; largest samples:\n", len(perAS))
	shown := 0
	for _, a := range world.Eyeballs() {
		if n := perAS[a.ASN]; n > 0 && shown < 5 {
			fmt.Printf("  AS %-5d %-18s %6d peers\n", a.ASN, a.Name, n)
			shown++
		}
	}
}
