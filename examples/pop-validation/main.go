// pop-validation reproduces the paper's §5 validation (Figure 2): the
// PoPs discovered from user density are matched against the PoP lists
// some ISPs publish online, at three kernel bandwidths. Lower bandwidth
// recovers more of the ground truth but with far lower reliability —
// "using larger kernel bandwidth leads to a smaller but more reliable set
// of PoP locations".
package main

import (
	"fmt"
	"log"

	"eyeballas"
)

func main() {
	log.SetFlags(0)

	env, err := eyeball.NewSmallExperiments(42)
	if err != nil {
		log.Fatal(err)
	}

	f2, err := eyeball.RunFigure2(env, []float64{10, 40, 80})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(f2.Render())
	fmt.Println()
	fmt.Print(eyeball.RunSection5(f2).Render())

	// Per-AS detail for the first few validation ASes at the paper's
	// default bandwidth, using the public matching primitives directly.
	fmt.Println("\nper-AS detail at 40 km:")
	shown := 0
	for _, asn := range f2.ASNs {
		rec := env.Dataset.AS(asn)
		fp, err := eyeball.EstimateFootprint(env.World, rec.Samples, eyeball.FootprintOptions{})
		if err != nil {
			log.Fatal(err)
		}
		ref := env.Reference.Locations(asn)
		m := eyeball.MatchPoPs(fp.PoPs, ref, eyeball.MatchRadiusKm)
		fmt.Printf("  AS %-5d (%s): discovered %2d, published %2d, recall %3.0f%%, precision %3.0f%%\n",
			asn, env.World.AS(asn).Name, m.NDiscovered, m.NReference,
			100*m.RefMatchedFrac(), 100*m.DiscMatchedFrac())
		shown++
		if shown == 8 {
			break
		}
	}

	// The traceroute baseline comparison (§5, DIMES).
	d, err := eyeball.RunDIMES(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(d.Render())
}
