// connectivity-casestudy reproduces the paper's §6 case study: what does
// an eyeball AS's geography predict about its connectivity — and how much
// richer is the reality?
//
// The subject is this world's analogue of AS 8234 (RAI): a city-level
// broadcaster in Rome with ~3000 P2P users. Geography suggests one or two
// national upstreams and peering at the local Rome exchange; the observed
// connectivity has five upstreams and remote peering in Milan.
package main

import (
	"fmt"
	"log"

	"eyeballas"
)

func main() {
	log.SetFlags(0)

	env, err := eyeball.NewSmallExperiments(42)
	if err != nil {
		log.Fatal(err)
	}

	cs, err := eyeball.RunCaseStudy(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cs.Render())

	// Dig one level deeper with the world's ground truth: why remote
	// peering makes sense — two of the three Milan peers are simply not
	// present at the Rome exchange, so peering with them requires the
	// more expensive remote arrangement (the paper's closing
	// observation).
	refs := env.World.CaseStudy()
	fmt.Println("\nwhy peer remotely? membership of the subject's peers:")
	for _, peer := range []eyeball.ASN{refs.Academic, refs.PeerB, refs.PeerC} {
		name := env.World.AS(peer).Name
		local := env.IXPData.MemberOf(refs.LocalIXP, peer)
		remote := env.IXPData.MemberOf(refs.RemoteIXP, peer)
		fmt.Printf("  %-16s local(%s)=%v remote(%s)=%v\n",
			name, cs.LocalIXPName, local, cs.RemoteIXPName, remote)
	}
	fmt.Println("\npeering with the two remote-only networks is impossible at the local exchange;")
	fmt.Println("the subject forgoes the cheaper local option for reach — as the paper concludes.")
}
