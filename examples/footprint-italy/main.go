// footprint-italy reproduces the paper's running example (Figure 1 and
// the §4.2 city list): the multi-bandwidth KDE footprint of an Italy-wide
// eyeball AS, showing how the kernel bandwidth acts as a resolution knob
// — city-level peaks at 20 km merge into regional and national blobs at
// 40 and 60 km.
package main

import (
	"fmt"
	"log"

	"eyeballas"
)

func main() {
	log.SetFlags(0)

	env, err := eyeball.NewSmallExperiments(42)
	if err != nil {
		log.Fatal(err)
	}

	// The planted Italy-wide national ISP is this world's AS 3269
	// analogue; RunFigure1 picks it automatically.
	fig, err := eyeball.RunFigure1(env, []float64{20, 40, 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig.Render())

	// The §4.2 numeric comparison: how the PoP list contracts with
	// bandwidth.
	fmt.Println("\nbandwidth sweep:")
	for _, bw := range []float64{10, 20, 40, 60, 80} {
		rec := env.Dataset.AS(fig.ASN)
		fp, err := eyeball.EstimateFootprint(env.World, rec.Samples,
			eyeball.FootprintOptions{BandwidthKm: bw})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  bw %3.0f km: %2d peaks → %2d PoP cities, %d partition(s)\n",
			bw, len(fp.Peaks), len(fp.PoPs), len(fp.Partitions))
	}

	// Ground truth for the same AS.
	a := env.World.AS(fig.ASN)
	fmt.Printf("\nground truth: %s has %d PoPs across Italy\n", a.Name, len(a.PoPs))
	for _, p := range a.PoPs {
		fmt.Printf("  %-10s share %.3f\n", p.City.Name, p.Share)
	}
}
