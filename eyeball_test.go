package eyeball

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

var apiShared struct {
	once sync.Once
	w    *World
	ds   *Dataset
	err  error
}

func apiSetup(t *testing.T) (*World, *Dataset) {
	t.Helper()
	apiShared.once.Do(func() {
		w, err := GenerateSmallWorld(7)
		if err != nil {
			apiShared.err = err
			return
		}
		ds, err := BuildTargetDataset(w, 7)
		if err != nil {
			apiShared.err = err
			return
		}
		apiShared.w, apiShared.ds = w, ds
	})
	if apiShared.err != nil {
		t.Fatal(apiShared.err)
	}
	return apiShared.w, apiShared.ds
}

func TestPublicWorkflow(t *testing.T) {
	w, ds := apiSetup(t)
	if len(ds.Records()) == 0 {
		t.Fatal("empty dataset")
	}
	rec := ds.Records()[0]
	fp, err := EstimateFootprint(w, rec.Samples, FootprintOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Bandwidth != DefaultBandwidthKm {
		t.Errorf("default bandwidth = %v", fp.Bandwidth)
	}
	if len(fp.PoPs) == 0 {
		t.Errorf("no PoPs for AS %d", rec.ASN)
	}
	if !strings.HasPrefix(fp.CityList(), "[") {
		t.Errorf("CityList = %q", fp.CityList())
	}
	cls := ClassifyLevel(rec.Samples)
	if cls.Level < LevelCity || cls.Level > LevelGlobal {
		t.Errorf("classification out of range: %+v", cls)
	}
}

func TestPublicMatch(t *testing.T) {
	w, ds := apiSetup(t)
	rec := ds.Records()[0]
	fp, err := EstimateFootprint(w, rec.Samples, FootprintOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var ref []GeoPoint
	for _, p := range fp.PoPs {
		ref = append(ref, p.City.Loc)
	}
	m := MatchPoPs(fp.PoPs, ref, MatchRadiusKm)
	if !m.Superset() || m.DiscMatchedFrac() != 1 {
		t.Errorf("self-match failed: %+v", m)
	}
}

func TestPublicConfigs(t *testing.T) {
	if DefaultWorldConfig(1).NTier1 < SmallWorldConfig(1).NTier1 {
		t.Error("default world should not be smaller than the small one")
	}
	if DefaultCrawlConfig().Scale <= 0 {
		t.Error("crawl config invalid")
	}
	if DefaultPipelineConfig().MinPeers <= 0 {
		t.Error("pipeline config invalid")
	}
	if Gazetteer().Len() < 400 {
		t.Error("gazetteer too small")
	}
}

func TestPublicExperiments(t *testing.T) {
	env, err := NewSmallExperiments(7)
	if err != nil {
		t.Fatal(err)
	}
	tbl := RunTable1(env)
	if tbl.TotalASes == 0 {
		t.Error("empty Table 1")
	}
	f2, err := RunFigure2(env, []float64{40})
	if err != nil {
		t.Fatal(err)
	}
	if RunSection5(f2).MeanReference <= 0 {
		t.Error("section 5 stats empty")
	}
	cs, err := RunCaseStudy(env)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Class.Level != LevelCity {
		t.Errorf("case-study level = %v", cs.Class.Level)
	}
}

func TestPublicSnapshotRoundTrip(t *testing.T) {
	w, _ := apiSetup(t)
	var buf bytes.Buffer
	if err := SaveWorld(&buf, w); err != nil {
		t.Fatal(err)
	}
	w2, err := LoadWorld(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.ASNs()) != len(w.ASNs()) || w2.Seed != w.Seed {
		t.Fatal("public snapshot round trip lost data")
	}
	// A dataset built over the reloaded world matches the original.
	ds2, err := BuildTargetDataset(w2, 7)
	if err != nil {
		t.Fatal(err)
	}
	ds1, _ := apiSetupDataset(t)
	if len(ds2.Order) != len(ds1.Order) || ds2.TotalPeers != ds1.TotalPeers {
		t.Errorf("pipeline over reloaded world differs: %d/%d ASes, %d/%d peers",
			len(ds2.Order), len(ds1.Order), ds2.TotalPeers, ds1.TotalPeers)
	}
}

func apiSetupDataset(t *testing.T) (*Dataset, *World) {
	t.Helper()
	w, ds := apiSetup(t)
	return ds, w
}
