package eyeball

// The benchmark harness: one target per table and figure of the paper's
// evaluation (Table 1, Figure 1, Figures 2a/2b, the §5 statistics and
// DIMES comparison, the §6 case study), plus substrate benchmarks and the
// ablations DESIGN.md calls out (bandwidth sweep, α sweep, AS-dependent
// bandwidth policy).
//
// Benchmarks run at test scale so `go test -bench=.` finishes quickly;
// the experiment binaries (cmd/eyeballexp) run the same code at full
// scale.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"eyeballas/internal/core"
	"eyeballas/internal/experiments"
	"eyeballas/internal/geo"
	"eyeballas/internal/kde"
	"eyeballas/internal/parallel"
)

var benchShared struct {
	once sync.Once
	env  *Experiments
	err  error
}

func benchEnv(b *testing.B) *Experiments {
	b.Helper()
	benchShared.once.Do(func() {
		benchShared.env, benchShared.err = NewSmallExperiments(42)
	})
	if benchShared.err != nil {
		b.Fatal(benchShared.err)
	}
	return benchShared.env
}

// BenchmarkTable1 regenerates the Table 1 target-dataset profile.
func BenchmarkTable1(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if RunTable1(env).TotalASes == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure1 regenerates the three density panels of Figure 1.
func BenchmarkFigure1(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFigure1(env, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2a regenerates Figure 2(a): the CDF of ground-truth PoPs
// matched, at the paper's three bandwidths.
func BenchmarkFigure2a(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f2, err := RunFigure2(env, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(f2.RefMatchedPct[40]) == 0 {
			b.Fatal("empty panel (a)")
		}
	}
}

// BenchmarkFigure2b regenerates Figure 2(b): the CDF of discovered PoPs
// matched.
func BenchmarkFigure2b(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f2, err := RunFigure2(env, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(f2.DiscMatchedPct[40]) == 0 {
			b.Fatal("empty panel (b)")
		}
	}
}

// BenchmarkSection5 regenerates the §5 scalar statistics.
func BenchmarkSection5(b *testing.B) {
	env := benchEnv(b)
	f2, err := RunFigure2(env, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if RunSection5(f2).MeanReference <= 0 {
			b.Fatal("empty stats")
		}
	}
}

// BenchmarkDIMES regenerates the §5 traceroute-baseline comparison.
func BenchmarkDIMES(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunDIMES(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCaseStudy regenerates the §6 connectivity case study.
func BenchmarkCaseStudy(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCaseStudy(env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- extension experiments (future-work items implemented) ---

// BenchmarkMultiScale regenerates the §5 future-work multi-bandwidth
// refinement study.
func BenchmarkMultiScale(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunMultiScale(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBias regenerates the §4.3 sampling-bias study.
func BenchmarkBias(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunBias(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFusion regenerates the §7 edge+traceroute fusion study.
func BenchmarkFusion(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFusion(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict regenerates the geography→connectivity prediction
// scorecard.
func BenchmarkPredict(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPredict(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPeerGeo regenerates the §1 peering-geography study.
func BenchmarkPeerGeo(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPeerGeo(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStability regenerates the temporal-stability study over three
// independent crawls.
func BenchmarkStability(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunStability(env, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDensityCorrelation regenerates the §4.2 density-validation
// study.
func BenchmarkDensityCorrelation(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunDensity(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServices regenerates the residential-vs-content study.
func BenchmarkServices(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunServices(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrawlQuality regenerates the crawl-effort sensitivity sweep.
func BenchmarkCrawlQuality(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCrawlQuality(env, []float64{1.0, 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate benchmarks ---

// BenchmarkWorldGeneration measures ground-truth world synthesis.
func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateSmallWorld(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline measures the full §2 measurement pipeline (crawl,
// dual geolocation, BGP grouping, conditioning).
func BenchmarkPipeline(b *testing.B) {
	w, err := GenerateSmallWorld(42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTargetDataset(w, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFootprintPerAS measures one AS's §3–§4 footprint estimation
// at the paper's default parameters.
func BenchmarkFootprintPerAS(b *testing.B) {
	env := benchEnv(b)
	rec := biggestRecord(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateFootprint(env.World, rec.Samples, FootprintOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFootprintFanOut measures the per-AS fan-out that dominates a
// full evaluation run: every eligible AS's §3–§4 footprint, dispatched
// over the shared worker pool at 1, 2, and GOMAXPROCS workers. Inner KDE
// parallelism is pinned to 1 so the benchmark isolates the per-AS axis.
func BenchmarkFootprintFanOut(b *testing.B) {
	env := benchEnv(b)
	records := env.Dataset.Records()
	if len(records) > 24 {
		records = records[:24]
	}
	workerCounts := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n > 2 {
		workerCounts = append(workerCounts, n)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			b.ReportMetric(float64(len(records)), "ases")
			for i := 0; i < b.N; i++ {
				err := parallel.ForEach(context.Background(), w, records, func(_ int, rec *ASRecord) error {
					_, err := EstimateFootprint(env.World, rec.Samples, FootprintOptions{Workers: 1})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// biggestRecord returns the best-sampled country-level AS (the
// interesting case for bandwidth/α ablations: multi-city footprints), or
// the best-sampled AS overall if none is country-level.
func biggestRecord(env *Experiments) *ASRecord {
	var best, bestCountry *ASRecord
	for _, rec := range env.Dataset.Records() {
		if best == nil || len(rec.Samples) > len(best.Samples) {
			best = rec
		}
		if rec.Class.Level == LevelCountry &&
			(bestCountry == nil || len(rec.Samples) > len(bestCountry.Samples)) {
			bestCountry = rec
		}
	}
	if bestCountry != nil {
		return bestCountry
	}
	return best
}

// --- ablations ---

// BenchmarkAblationBandwidth sweeps the kernel bandwidth beyond the
// paper's three values, measuring cost and reporting the PoP counts via
// sub-benchmark metrics.
func BenchmarkAblationBandwidth(b *testing.B) {
	env := benchEnv(b)
	rec := biggestRecord(env)
	for _, bw := range []float64{10, 20, 40, 80, 120} {
		b.Run(bwName(bw), func(b *testing.B) {
			pops := 0
			for i := 0; i < b.N; i++ {
				fp, err := EstimateFootprint(env.World, rec.Samples, FootprintOptions{BandwidthKm: bw})
				if err != nil {
					b.Fatal(err)
				}
				pops = len(fp.PoPs)
			}
			b.ReportMetric(float64(pops), "pops")
		})
	}
}

func bwName(bw float64) string {
	switch bw {
	case 10:
		return "bw10km"
	case 20:
		return "bw20km"
	case 40:
		return "bw40km"
	case 80:
		return "bw80km"
	default:
		return "bw120km"
	}
}

// BenchmarkAblationAlpha sweeps the peak-selection threshold α (§4.1
// fixes it at 0.01).
func BenchmarkAblationAlpha(b *testing.B) {
	env := benchEnv(b)
	rec := biggestRecord(env)
	for _, tc := range []struct {
		name  string
		alpha float64
	}{{"alpha0.001", 0.001}, {"alpha0.01", 0.01}, {"alpha0.1", 0.1}} {
		b.Run(tc.name, func(b *testing.B) {
			pops := 0
			for i := 0; i < b.N; i++ {
				fp, err := EstimateFootprint(env.World, rec.Samples, FootprintOptions{Alpha: tc.alpha})
				if err != nil {
					b.Fatal(err)
				}
				pops = len(fp.PoPs)
			}
			b.ReportMetric(float64(pops), "pops")
		})
	}
}

// BenchmarkAblationASBandwidth compares the paper's fixed 40 km policy
// against the AS-dependent alternative §3.1 describes and rejects: the
// 90th percentile of each AS's geolocation error, floored at 40 km.
func BenchmarkAblationASBandwidth(b *testing.B) {
	env := benchEnv(b)
	records := env.Dataset.Records()
	if len(records) > 12 {
		records = records[:12]
	}
	b.Run("fixed40km", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, rec := range records {
				if _, err := EstimateFootprint(env.World, rec.Samples, FootprintOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("geoErrP90", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, rec := range records {
				errs := make([]float64, len(rec.Samples))
				for j, s := range rec.Samples {
					errs[j] = s.GeoErrKm
				}
				bw := kde.GeoErrorBandwidth(errs, 40)
				if _, err := EstimateFootprint(env.World, rec.Samples, FootprintOptions{BandwidthKm: bw}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationBandwidthSelectors compares data-driven bandwidth
// selection (Silverman, LSCV) against the fixed policy on one AS's
// samples.
func BenchmarkAblationBandwidthSelectors(b *testing.B) {
	env := benchEnv(b)
	rec := biggestRecord(env)
	samples := make([]core.Sample, len(rec.Samples))
	copy(samples, rec.Samples)
	proj := projectSamples(samples)
	b.Run("silverman", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kde.SilvermanBandwidth(proj); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lscv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kde.LSCVBandwidth(proj, []float64{10, 20, 40, 80}, 400); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("botevISJ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kde.ISJBandwidth(proj); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func projectSamples(samples []core.Sample) []geo.XY {
	pts := make([]geo.Point, len(samples))
	for i, s := range samples {
		pts[i] = s.Loc
	}
	centroid, _ := geo.Centroid(pts)
	proj := geo.NewProjection(centroid)
	return proj.ProjectAll(pts)
}

// BenchmarkExperimentEnv measures building the full small-scale
// measurement environment from scratch.
func BenchmarkExperimentEnv(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewEnv(uint64(i), experiments.ScaleSmall); err != nil {
			b.Fatal(err)
		}
	}
}
