// Command eyeballclient is the resilient CLI for the eyeballserve
// /v1 API: every request goes through internal/client's full serving
// discipline — deadline-aware retries with seeded full-jitter backoff,
// Retry-After honoring, a retry budget, per-endpoint circuit breakers,
// and optional hedged GETs — so the command line exercises exactly the
// failure handling library consumers get.
//
// Usage:
//
//	eyeballclient -url http://host:port [-timeout 30s] [-attempts 4]
//	              [-seed N] [-hedge D] [-breaker-threshold N]
//	              [-breaker-cooldown D] <command> [args]
//
// Commands:
//
//	health               GET /healthz, print the body
//	as <asn>             GET /v1/as/{asn}, print the body
//	lookup <ip>          GET /v1/lookup?ip=<ip>, print the body
//	footprint <asn>      GET /v1/footprint/{asn} (-bw overrides km)
//	footprints <a,b,c>   GET /v1/footprints bulk: one JSON line per AS,
//	                     in request order, per-AS errors inline (-bw
//	                     overrides km; batches of 64 per request)
//	reload               POST /-/reload, print the result
//	drill <path>...      issue -n requests round-robin over the given
//	                     paths, classify every outcome, and print a
//	                     JSON report (see below)
//
// drill is the chaos-harness mode CI uses against a fault-injected
// server: requests run sequentially (so a seeded server's injection
// ledger is reproducible), every failure must map to one of the
// client's typed errors, and the report counts the fault markers the
// client observed per X-Chaos point. The command exits non-zero only
// on unclassified errors or a report-writing failure — typed errors
// are expected outcomes under chaos, not tool failures.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"eyeballas/internal/client"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "eyeballclient: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("eyeballclient", flag.ContinueOnError)
	fs.SetOutput(stdout)
	url := fs.String("url", "", "server base URL, e.g. http://127.0.0.1:8080 (required)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-command deadline (drill: per-request)")
	attempts := fs.Int("attempts", 4, "max wire attempts per request, first try included")
	seed := fs.Uint64("seed", 1, "backoff-jitter seed: same seed, same retry schedule")
	hedge := fs.Duration("hedge", 0, "hedge idempotent GETs after this delay (0 disables; ignored by drill)")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive failures that open an endpoint's circuit")
	breakerCooldown := fs.Duration("breaker-cooldown", time.Second, "open-circuit cooldown before the half-open probe")
	bw := fs.Float64("bw", 0, "footprint kernel bandwidth in km (0 = server default)")
	n := fs.Int("n", 100, "drill: total requests to issue")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return errors.New("-url is required")
	}
	cmdArgs := fs.Args()
	if len(cmdArgs) == 0 {
		return errors.New("missing command: health | as | lookup | footprint | reload | drill")
	}
	cmd, rest := cmdArgs[0], cmdArgs[1:]

	opts := client.Options{
		MaxAttempts: *attempts,
		Seed:        *seed,
		HedgeAfter:  *hedge,
		Breaker: client.BreakerConfig{
			Threshold: *breakerThreshold,
			Cooldown:  *breakerCooldown,
		},
	}
	if cmd == "drill" {
		// Hedging duplicates attempts at racy times; the drill's
		// reproducible-ledger contract needs one attempt stream.
		opts.HedgeAfter = 0
	}

	switch cmd {
	case "health":
		return printGet(ctx, stdout, opts, *url, *timeout, "/healthz")
	case "as":
		asn, err := argASN(rest)
		if err != nil {
			return err
		}
		return printGet(ctx, stdout, opts, *url, *timeout, fmt.Sprintf("/v1/as/%d", asn))
	case "lookup":
		if len(rest) != 1 {
			return errors.New("usage: lookup <ip>")
		}
		return printGet(ctx, stdout, opts, *url, *timeout, "/v1/lookup?ip="+rest[0])
	case "footprint":
		asn, err := argASN(rest)
		if err != nil {
			return err
		}
		path := fmt.Sprintf("/v1/footprint/%d", asn)
		if *bw > 0 {
			path += fmt.Sprintf("?bw=%g", *bw)
		}
		return printGet(ctx, stdout, opts, *url, *timeout, path)
	case "footprints":
		asns, err := argASNList(rest)
		if err != nil {
			return err
		}
		c := client.New(*url, opts)
		cctx, cancel := context.WithTimeout(ctx, *timeout)
		defer cancel()
		lines, err := c.Footprints(cctx, asns, *bw)
		if err != nil {
			return err
		}
		for _, line := range lines {
			if _, err := stdout.Write(line); err != nil {
				return err
			}
		}
		return nil
	case "reload":
		c := client.New(*url, opts)
		cctx, cancel := context.WithTimeout(ctx, *timeout)
		defer cancel()
		res, err := c.Reload(cctx)
		if err != nil {
			return err
		}
		return json.NewEncoder(stdout).Encode(res)
	case "drill":
		return drill(ctx, stdout, opts, *url, *timeout, *n, rest)
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func argASN(rest []string) (int, error) {
	if len(rest) != 1 {
		return 0, errors.New("expected exactly one ASN argument")
	}
	asn, err := strconv.Atoi(rest[0])
	if err != nil || asn < 0 {
		return 0, fmt.Errorf("bad ASN %q", rest[0])
	}
	return asn, nil
}

// argASNList parses the footprints argument: one comma-separated list
// of ASNs ("64500,64501,99999").
func argASNList(rest []string) ([]int, error) {
	if len(rest) != 1 {
		return nil, errors.New("usage: footprints <asn[,asn...]>")
	}
	parts := strings.Split(rest[0], ",")
	asns := make([]int, 0, len(parts))
	for _, p := range parts {
		asn, err := strconv.Atoi(p)
		if err != nil || asn < 0 {
			return nil, fmt.Errorf("bad ASN %q in %q", p, rest[0])
		}
		asns = append(asns, asn)
	}
	return asns, nil
}

func printGet(ctx context.Context, stdout io.Writer, opts client.Options, url string, timeout time.Duration, path string) error {
	c := client.New(url, opts)
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	body, err := c.Get(cctx, path)
	if err != nil {
		return err
	}
	_, err = stdout.Write(body)
	return err
}

// drillReport is the JSON the drill command emits: per-class outcome
// counts plus the client-side view of the server's fault injections.
// Bulk-footprint paths (/v1/footprints) additionally classify their
// newline-delimited bodies line by line: BulkLines counts per-AS lines
// received, BulkInlineErrors the lines that carried the server's
// inline error payload (unknown AS, render failure) — a bulk request
// counts as OK even when some of its lines are inline errors, exactly
// matching the endpoint's contract.
type drillReport struct {
	Requests         int            `json:"requests"`
	OK               int            `json:"ok"`
	TypedErrors      map[string]int `json:"typed_errors"`
	Unclassified     int            `json:"unclassified"`
	Attempts         int            `json:"attempts"`
	Observed         map[string]int `json:"observed_injections"`
	BulkLines        int            `json:"bulk_lines,omitempty"`
	BulkInlineErrors int            `json:"bulk_inline_errors,omitempty"`
}

func drill(ctx context.Context, stdout io.Writer, opts client.Options, url string, timeout time.Duration, n int, paths []string) error {
	if len(paths) == 0 {
		return errors.New("usage: drill <path>... (e.g. drill /v1/as/64500 '/v1/lookup?ip=10.0.0.1')")
	}
	rep := drillReport{
		TypedErrors: map[string]int{},
		Observed:    map[string]int{},
	}
	// Fresh connection per request: on a reused keep-alive connection
	// that dies before response bytes arrive, net/http silently retries
	// idempotent GETs — the server would draw a chaos decision the
	// Observer never saw, and the ledgers would drift. One connection
	// per attempt keeps client and server counts reconcilable.
	opts.HTTPClient = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	opts.Observer = func(a client.Attempt) {
		rep.Attempts++
		switch {
		case a.Err != nil:
			// Transport death is the client-visible face of serve-drop.
			rep.Observed["serve-drop"]++
		case a.Chaos != "":
			rep.Observed[a.Chaos]++
		}
	}
	c := client.New(url, opts)

	for i := 0; i < n; i++ {
		path := paths[i%len(paths)]
		cctx, cancel := context.WithTimeout(ctx, timeout)
		body, err := c.Get(cctx, path)
		cancel()
		switch {
		case err == nil:
			rep.OK++
			if strings.HasPrefix(path, "/v1/footprints") {
				lines, inlineErrs := classifyBulk(body)
				rep.BulkLines += lines
				rep.BulkInlineErrors += inlineErrs
			}
		case errors.Is(err, client.ErrNotFound):
			rep.TypedErrors["not_found"]++
		case errors.Is(err, client.ErrOverloaded):
			rep.TypedErrors["overloaded"]++
		case errors.Is(err, client.ErrCircuitOpen):
			rep.TypedErrors["circuit_open"]++
		case errors.Is(err, client.ErrRetryBudgetExhausted):
			rep.TypedErrors["retry_budget_exhausted"]++
		case errors.Is(err, client.ErrUnavailable):
			rep.TypedErrors["unavailable"]++
		case isAPIError(err):
			rep.TypedErrors["api_error"]++
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			rep.Unclassified++
		}
		rep.Requests++
	}

	// encoding/json marshals map keys in sorted order, so the report
	// is byte-stable across runs — the CI ledger comparison diffs it.
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if rep.Unclassified > 0 {
		return fmt.Errorf("%d of %d outcomes were unclassified errors", rep.Unclassified, rep.Requests)
	}
	return nil
}

func isAPIError(err error) bool {
	var api *client.APIError
	return errors.As(err, &api)
}

// classifyBulk scans a bulk-footprints body: one JSON object per line,
// error lines carrying exactly the single endpoint's {"error": ...}
// payload.
func classifyBulk(body []byte) (lines, inlineErrs int) {
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if line == "" {
			continue
		}
		lines++
		var m struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &m); err == nil && m.Error != "" {
			inlineErrs++
		}
	}
	return lines, inlineErrs
}
