package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

func TestCommandsPrintRawBodies(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok","generation":1}` + "\n"))
	})
	mux.HandleFunc("GET /v1/as/{asn}", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"asn":` + r.PathValue("asn") + `}` + "\n"))
	})
	mux.HandleFunc("GET /v1/lookup", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ip":"` + r.URL.Query().Get("ip") + `","matched":false}` + "\n"))
	})
	mux.HandleFunc("GET /v1/footprint/{asn}", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"asn":` + r.PathValue("asn") + `,"bw":"` + r.URL.Query().Get("bw") + `"}` + "\n"))
	})
	mux.HandleFunc("POST /-/reload", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"reloaded","generation":2}` + "\n"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-url", ts.URL, "health"}, `"status":"ok"`},
		{[]string{"-url", ts.URL, "as", "64500"}, `{"asn":64500}`},
		{[]string{"-url", ts.URL, "lookup", "10.0.0.1"}, `"ip":"10.0.0.1"`},
		{[]string{"-url", ts.URL, "-bw", "35", "footprint", "64500"}, `"bw":"35"`},
		{[]string{"-url", ts.URL, "reload"}, `"generation":2`},
	} {
		out, _, err := runCLI(t, tc.args...)
		if err != nil {
			t.Errorf("%v: %v", tc.args, err)
			continue
		}
		if !strings.Contains(out, tc.want) {
			t.Errorf("%v output %q does not contain %q", tc.args, out, tc.want)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"health"},                                     // missing -url
		{"-url", "http://x"},                           // missing command
		{"-url", "http://x", "frobnicate"},             // unknown command
		{"-url", "http://x", "as"},                     // missing ASN
		{"-url", "http://x", "as", "banana"},           // bad ASN
		{"-url", "http://x", "drill"},                  // no drill paths
		{"-url", "http://x", "lookup", "1.2.3.4", "x"}, // extra arg
	} {
		if _, _, err := runCLI(t, args...); err == nil {
			t.Errorf("%v: expected a usage error", args)
		}
	}
}

// TestDrillClassifiesAndReports: against a server that injects a
// deterministic mix of chaos-marked 500s, the drill must classify
// every outcome, count observed injections, and exit cleanly (typed
// errors are expected under chaos, not failures).
func TestDrillClassifiesAndReports(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n%5 == 0 { // every 5th attempt: injected 500, retries recover
			w.Header().Set("X-Chaos", "serve-500")
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"injected"}`))
			return
		}
		w.Write([]byte(`{"asn":64500}`))
	}))
	defer ts.Close()

	out, _, err := runCLI(t, "-url", ts.URL, "-n", "40", "-seed", "7", "drill", "/v1/as/64500")
	if err != nil {
		t.Fatalf("drill: %v\n%s", err, out)
	}
	var rep drillReport
	if jerr := json.Unmarshal([]byte(out), &rep); jerr != nil {
		t.Fatalf("drill output not JSON: %v\n%s", jerr, out)
	}
	if rep.Requests != 40 || rep.Unclassified != 0 {
		t.Errorf("report = %+v, want 40 requests, 0 unclassified", rep)
	}
	if rep.OK != 40 {
		t.Errorf("every request should recover via retries, got %d ok", rep.OK)
	}
	if rep.Observed["serve-500"] == 0 {
		t.Errorf("drill observed no injections: %+v", rep.Observed)
	}
	if rep.Attempts <= rep.Requests {
		t.Errorf("attempts %d should exceed requests %d under retries", rep.Attempts, rep.Requests)
	}
}

// TestDrillAgainstDeadServer: total unavailability must come out as
// typed unavailable outcomes (exit 0), never unclassified.
func TestDrillAgainstDeadServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()

	out, _, err := runCLI(t, "-url", url, "-n", "5", "-attempts", "2",
		"-breaker-threshold", "1000", "drill", "/healthz")
	if err != nil {
		t.Fatalf("drill against dead server must classify, not fail: %v", err)
	}
	var rep drillReport
	if jerr := json.Unmarshal([]byte(out), &rep); jerr != nil {
		t.Fatalf("drill output not JSON: %v\n%s", jerr, out)
	}
	if rep.Unclassified != 0 {
		t.Errorf("unclassified = %d, want 0", rep.Unclassified)
	}
	if rep.TypedErrors["unavailable"]+rep.TypedErrors["retry_budget_exhausted"] != 5 {
		t.Errorf("typed errors = %+v, want all 5 requests classified", rep.TypedErrors)
	}
}
