package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"eyeballas/internal/astopo"
	"eyeballas/internal/core"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/obs"
	"eyeballas/internal/p2p"
	"eyeballas/internal/pipeline"
	"eyeballas/internal/serve"
	"eyeballas/internal/snapshot"
)

// writeTestSnapshot builds a one-AS snapshot on disk for CLI tests.
func writeTestSnapshot(t *testing.T) string {
	t.Helper()
	milan, ok := gazetteer.Default().Find("Milan", "IT")
	if !ok {
		t.Fatal("gazetteer lost Milan")
	}
	samples := make([]core.Sample, 0, 120)
	for i := 0; i < 120; i++ {
		samples = append(samples, core.Sample{
			Loc: geo.Point{
				Lat: milan.Loc.Lat + 0.02*float64(i%7) - 0.06,
				Lon: milan.Loc.Lon + 0.02*float64(i%5) - 0.04,
			},
			City: "Milan", Country: "IT", GeoErrKm: float64(i % 25),
		})
	}
	rec := &pipeline.ASRecord{
		ASN: 64500, Users: 120, Samples: samples,
		PeersByApp: map[p2p.App]int{p2p.Kad: 120},
		Class:      core.Classification{Level: astopo.LevelCity, Place: "Milan/IT", Share: 1},
		Region:     gazetteer.EU,
	}
	snap := &snapshot.Snapshot{
		Meta: snapshot.Meta{Seed: 42, Label: "cli-test"},
		Dataset: &pipeline.Dataset{
			ASes:       map[astopo.ASN]*pipeline.ASRecord{64500: rec},
			Order:      []astopo.ASN{64500},
			TotalPeers: 120,
			Funnel:     obs.NewFunnel("cli-test"),
		},
	}
	path := t.TempDir() + "/cli.snap"
	if err := snapshot.WriteFile(path, snap); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func TestRunRequiresSnapFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run(context.Background(), nil, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "-snap is required") {
		t.Fatalf("err = %v, want -snap is required", err)
	}
}

func TestRunRejectsMissingFile(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{"-snap", t.TempDir() + "/absent.snap"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "loading") {
		t.Fatalf("err = %v, want loading error", err)
	}
}

// TestPrintFootprintMatchesRender drives the offline -print-footprint
// mode and checks the bytes against serve.RenderFootprint — the same
// equivalence CI proves against eyeballpipe -footprint.
func TestPrintFootprintMatchesRender(t *testing.T) {
	path := writeTestSnapshot(t)
	var out, errOut bytes.Buffer
	err := run(context.Background(),
		[]string{"-snap", path, "-print-footprint", "64500", "-bw", "40"},
		&out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	snap, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serve.RenderFootprint(context.Background(),
		gazetteer.Default(), snap.Dataset.AS(64500), 40, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("-print-footprint bytes differ from RenderFootprint:\n%s\nvs\n%s", out.Bytes(), want)
	}
	if !strings.Contains(errOut.String(), "loaded ") {
		t.Errorf("missing load summary on stderr: %q", errOut.String())
	}
}

func TestPrintFootprintUnknownAS(t *testing.T) {
	path := writeTestSnapshot(t)
	var out, errOut bytes.Buffer
	err := run(context.Background(),
		[]string{"-snap", path, "-print-footprint", "7"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "HTTP 404") {
		t.Fatalf("err = %v, want HTTP 404", err)
	}
}
