// Command eyeballserve serves a snapshot artifact written by
// eyeballpipe -snapshot: classification records, compiled-LPM origin
// lookups, and KDE footprints over HTTP, with hot reload.
//
// Usage:
//
//	eyeballserve -snap dataset.snap [-addr :8080] [-timeout 5s]
//	             [-max-inflight N] [-cache N] [-bw KM] [-workers N]
//	             [-print-footprint ASN]
//	             [-metrics out.json|out.prom|-] [-trace] [-pprof :6060]
//
// Endpoints:
//
//	GET  /healthz              liveness + artifact summary
//	GET  /v1/as/{asn}          classification record for one AS
//	GET  /v1/lookup?ip=a.b.c.d origin AS of an address
//	GET  /v1/footprint/{asn}   PoP-level footprint (?bw= overrides km)
//	POST /-/reload             hot-swap to the re-read artifact file
//
// SIGHUP reloads the snapshot file in place, exactly like POST
// /-/reload: the new artifact is parsed and fully validated before the
// atomic swap, in-flight requests finish on the old artifact, and a
// corrupt replacement file leaves the old artifact serving. SIGINT and
// SIGTERM shut the server down gracefully.
//
// -print-footprint renders one AS's footprint JSON to stdout and exits
// without serving — the offline mode CI uses to prove served bytes
// match the pipeline's.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eyeballas/internal/obs"
	"eyeballas/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eyeballserve: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("eyeballserve", flag.ContinueOnError)
	fs.SetOutput(stdout)
	snapPath := fs.String("snap", "", "snapshot artifact to serve (required; written by eyeballpipe -snapshot)")
	addr := fs.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request deadline (footprint renders observe it at KDE block boundaries)")
	maxInflight := fs.Int("max-inflight", 64, "bound on concurrently served data requests; excess requests get 503 + Retry-After (-1 disables)")
	cacheSize := fs.Int("cache", 128, "rendered-footprint LRU capacity in entries (-1 disables)")
	bw := fs.Float64("bw", 40, "default footprint kernel bandwidth in km (per-request ?bw= overrides)")
	workers := fs.Int("workers", 1, "KDE workers per footprint render")
	printFootprint := fs.Int("print-footprint", 0, "render this AS's footprint JSON to stdout and exit (no server)")
	obsFlags := obs.BindCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapPath == "" {
		return errors.New("-snap is required")
	}
	reg := obsFlags.Registry()
	if err := obsFlags.Start(stderr); err != nil {
		return err
	}
	defer obsFlags.Finish(stdout, stderr)

	srv := serve.New(serve.Options{
		Timeout:     *timeout,
		MaxInflight: *maxInflight,
		CacheSize:   *cacheSize,
		BandwidthKm: *bw,
		Workers:     *workers,
		Obs:         reg,
	})
	art, err := srv.LoadFile(*snapPath)
	if err != nil {
		return fmt.Errorf("loading %s: %w", *snapPath, err)
	}
	ds := art.Snap.Dataset
	fmt.Fprintf(stderr, "loaded %s: %d ASes, %d peers (seed %d, label %q)\n",
		*snapPath, len(ds.Order), ds.TotalPeers, art.Snap.Meta.Seed, art.Snap.Meta.Label)

	if *printFootprint != 0 {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			fmt.Sprintf("/v1/footprint/%d?bw=%g", *printFootprint, *bw), nil)
		if err != nil {
			return err
		}
		rec := newBufferResponse()
		srv.Handler().ServeHTTP(rec, req)
		if rec.code != http.StatusOK {
			return fmt.Errorf("footprint AS%d: HTTP %d: %s", *printFootprint, rec.code, rec.body.String())
		}
		_, err = io.Copy(stdout, &rec.body)
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// SIGHUP → hot reload, for as long as the server runs.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				if a, err := srv.Reload(); err != nil {
					fmt.Fprintf(stderr, "reload failed, keeping generation %d: %v\n", srv.Artifact().Gen, err)
				} else {
					fmt.Fprintf(stderr, "reloaded %s: generation %d, %d ASes\n",
						a.Path, a.Gen, len(a.Snap.Dataset.Order))
				}
			}
		}
	}()

	fmt.Fprintf(stderr, "listening on http://%s\n", ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(shutdownCtx)
	case err := <-errc:
		return err
	}
}

// bufferResponse captures a handler's response for the offline
// -print-footprint mode (no httptest outside _test files).
type bufferResponse struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func newBufferResponse() *bufferResponse {
	return &bufferResponse{code: http.StatusOK, header: make(http.Header)}
}

func (r *bufferResponse) Header() http.Header         { return r.header }
func (r *bufferResponse) WriteHeader(code int)        { r.code = code }
func (r *bufferResponse) Write(p []byte) (int, error) { return r.body.Write(p) }
