// Command eyeballserve serves a snapshot artifact written by
// eyeballpipe -snapshot: classification records, compiled-LPM origin
// lookups, and KDE footprints over HTTP, with hot reload.
//
// Usage:
//
//	eyeballserve -snap dataset.snap [-addr :8080] [-timeout 5s]
//	             [-max-inflight N] [-target-latency D] [-cache N]
//	             [-bw KM] [-workers N]
//	             [-warm] [-warm-workers N] [-warm-budget D]
//	             [-print-footprint ASN] [-log-format json|text]
//	             [-tracing=false] [-trace-recent N] [-trace-slow D]
//	             [-trace-seed N]
//	             [-chaos SPEC] [-chaos-seed N] [-chaos-slow-max D]
//	             [-metrics out.json|out.prom|-] [-trace] [-pprof :6060]
//
// Endpoints:
//
//	GET  /healthz              liveness + artifact summary
//	GET  /v1/as/{asn}          classification record for one AS
//	GET  /v1/lookup?ip=a.b.c.d origin AS of an address
//	GET  /v1/footprint/{asn}   PoP-level footprint (?bw= overrides km)
//	GET  /v1/footprints?asns=  bulk footprints, one JSON line per AS
//	POST /-/reload             hot-swap to the re-read artifact file
//	GET  /debug/requests       flight recorder: recent request traces
//	GET  /debug/requests/slow  flight recorder: slow captures
//	GET  /debug/trace/{id}     one full request trace as JSON
//	GET  /metrics              Prometheus exposition (with -metrics/-trace/-pprof)
//
// All operational output — startup, reload results, and the per-request
// access log — flows through one structured slog stream on stderr
// (JSON by default; -log-format text for humans). Request tracing is on
// by default and adds nothing to response bytes; -tracing=false
// disables it entirely.
//
// SIGHUP reloads the snapshot file in place, exactly like POST
// /-/reload: the new artifact is parsed and fully validated before the
// atomic swap, in-flight requests finish on the old artifact, and a
// corrupt replacement file leaves the old artifact serving. SIGINT and
// SIGTERM shut the server down gracefully.
//
// -print-footprint renders one AS's footprint JSON to stdout and exits
// without serving — the offline mode CI uses to prove served bytes
// match the pipeline's.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eyeballas/internal/faults"
	"eyeballas/internal/obs"
	"eyeballas/internal/serve"
	"eyeballas/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		// The flag-configured logger lives inside run; a startup
		// failure is reported on the same stream in the default shape.
		slog.New(slog.NewJSONHandler(os.Stderr, nil)).Error("eyeballserve failed", "error", err.Error())
		os.Exit(1)
	}
}

// newLogger builds the process-wide structured logger: one handler for
// startup, reload, and access-log lines, so the whole operational
// story is a single greppable stream.
func newLogger(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	}
	return nil, fmt.Errorf("-log-format must be json or text, got %q", format)
}

// logReload emits the result of one reload attempt. The failure shape
// (level=ERROR, msg="reload failed", generation=<still serving>,
// error=<typed snapshot error>) is pinned by TestReloadFailureLogShape
// — operators alert on it, so it must not drift.
func logReload(logger *slog.Logger, art *serve.Artifact, cur *serve.Artifact, err error) {
	if err != nil {
		gen := uint64(0)
		if cur != nil {
			gen = cur.Gen
		}
		logger.LogAttrs(context.Background(), slog.LevelError, "reload failed",
			slog.Uint64("generation", gen),
			slog.String("error", err.Error()))
		return
	}
	logger.LogAttrs(context.Background(), slog.LevelInfo, "reloaded",
		slog.String("path", art.Path),
		slog.Uint64("generation", art.Gen),
		slog.Int("ases", len(art.Snap.Dataset.Order)))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("eyeballserve", flag.ContinueOnError)
	fs.SetOutput(stdout)
	snapPath := fs.String("snap", "", "snapshot artifact to serve (required; written by eyeballpipe -snapshot)")
	addr := fs.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request deadline (footprint renders observe it at KDE block boundaries)")
	maxInflight := fs.Int("max-inflight", 64, "bound on concurrently served data requests; excess requests get 503 + Retry-After (-1 disables)")
	cacheSize := fs.Int("cache", 128, "rendered-footprint LRU capacity in entries (-1 disables)")
	bw := fs.Float64("bw", 40, "default footprint kernel bandwidth in km (per-request ?bw= overrides)")
	workers := fs.Int("workers", 1, "KDE workers per footprint render")
	warm := fs.Bool("warm", false, "prewarm the footprint cache: render every dataset AS at the default bandwidth (descending user count) on startup and after every reload")
	warmWorkers := fs.Int("warm-workers", 1, "concurrent warm renders (the warmer's low-priority semaphore)")
	warmBudget := fs.Duration("warm-budget", 0, "wall-time bound per warm pass (0 = unbounded)")
	printFootprint := fs.Int("print-footprint", 0, "render this AS's footprint JSON to stdout and exit (no server)")
	logFormat := fs.String("log-format", "json", "structured log encoding: json or text")
	tracing := fs.Bool("tracing", true, "record request-scoped traces (flight recorder + /debug endpoints)")
	traceRecent := fs.Int("trace-recent", 128, "flight recorder capacity: last N completed request traces")
	traceSlow := fs.Duration("trace-slow", 250*time.Millisecond, "slow-capture threshold; requests at or above it enter the slow ring")
	traceSeed := fs.Uint64("trace-seed", 0, "trace-ID seed: nonzero makes IDs deterministic (tests/CI), 0 draws random IDs")
	chaosSpec := fs.String("chaos", "", "serve-path fault plan, e.g. serve-500=0.05,serve-drop=0.02 (see internal/faults; empty = chaos off)")
	chaosSeed := fs.Uint64("chaos-seed", 1, "chaos plan seed: decisions are a pure function of (seed, point, request sequence)")
	chaosSlowMax := fs.Duration("chaos-slow-max", 25*time.Millisecond, "ceiling for serve-slow injected delays")
	targetLatency := fs.Duration("target-latency", 250*time.Millisecond, "latency target for the adaptive concurrency limiter (EWMA above it shrinks the admission limit)")
	obsFlags := obs.BindCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapPath == "" {
		return errors.New("-snap is required")
	}
	logger, err := newLogger(*logFormat, stderr)
	if err != nil {
		return err
	}
	reg := obsFlags.Registry()
	if err := obsFlags.Start(stderr); err != nil {
		return err
	}
	defer obsFlags.Finish(stdout, stderr)

	var chaos *serve.Chaos
	if *chaosSpec != "" {
		plan, err := faults.ParseSpec(*chaosSpec, *chaosSeed)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		chaos = serve.NewChaos(plan, *chaosSlowMax)
		if chaos == nil {
			return fmt.Errorf("-chaos %q arms no serve-path points (serve-slow, serve-panic, serve-500, serve-drop, reload-fail)", *chaosSpec)
		}
		logger.LogAttrs(ctx, slog.LevelWarn, "chaos armed",
			slog.String("spec", *chaosSpec),
			slog.Uint64("seed", *chaosSeed))
	}

	var tracer *trace.Tracer
	if *tracing {
		tracer = trace.New(trace.Options{
			Seed: *traceSeed,
			Recorder: trace.NewRecorder(trace.RecorderOptions{
				Recent:        *traceRecent,
				SlowThreshold: *traceSlow,
			}),
		})
	}

	srv := serve.New(serve.Options{
		Timeout:       *timeout,
		MaxInflight:   *maxInflight,
		CacheSize:     *cacheSize,
		BandwidthKm:   *bw,
		Workers:       *workers,
		Warm:          *warm,
		WarmWorkers:   *warmWorkers,
		WarmBudget:    *warmBudget,
		TargetLatency: *targetLatency,
		Chaos:         chaos,
		Obs:           reg,
		Tracer:        tracer,
		AccessLog:     logger,
	})
	defer srv.Close() // stops the background warmer before the metrics snapshot
	art, err := srv.LoadFile(*snapPath)
	if err != nil {
		return fmt.Errorf("loading %s: %w", *snapPath, err)
	}
	if *warm {
		logger.LogAttrs(ctx, slog.LevelInfo, "warming footprint cache",
			slog.Int("ases", len(art.Snap.Dataset.Order)),
			slog.Int("workers", *warmWorkers),
			slog.Duration("budget", *warmBudget))
	}
	ds := art.Snap.Dataset
	logger.LogAttrs(ctx, slog.LevelInfo, "loaded snapshot",
		slog.String("path", *snapPath),
		slog.Int("ases", len(ds.Order)),
		slog.Int("peers", ds.TotalPeers),
		slog.Uint64("seed", art.Snap.Meta.Seed),
		slog.String("label", art.Snap.Meta.Label))

	if *printFootprint != 0 {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			fmt.Sprintf("/v1/footprint/%d?bw=%g", *printFootprint, *bw), nil)
		if err != nil {
			return err
		}
		rec := newBufferResponse()
		srv.Handler().ServeHTTP(rec, req)
		if rec.code != http.StatusOK {
			return fmt.Errorf("footprint AS%d: HTTP %d: %s", *printFootprint, rec.code, rec.body.String())
		}
		_, err = io.Copy(stdout, &rec.body)
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// SIGHUP → hot reload, for as long as the server runs.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				a, err := srv.Reload()
				logReload(logger, a, srv.Artifact(), err)
			}
		}
	}()

	logger.LogAttrs(ctx, slog.LevelInfo, "listening",
		slog.String("addr", ln.Addr().String()),
		slog.String("url", "http://"+ln.Addr().String()))
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(shutdownCtx)
	case err := <-errc:
		return err
	}
}

// bufferResponse captures a handler's response for the offline
// -print-footprint mode (no httptest outside _test files).
type bufferResponse struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func newBufferResponse() *bufferResponse {
	return &bufferResponse{code: http.StatusOK, header: make(http.Header)}
}

func (r *bufferResponse) Header() http.Header         { return r.header }
func (r *bufferResponse) WriteHeader(code int)        { r.code = code }
func (r *bufferResponse) Write(p []byte) (int, error) { return r.body.Write(p) }
