package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"eyeballas/internal/serve"
	"eyeballas/internal/snapshot"
)

func TestRunRejectsBadLogFormat(t *testing.T) {
	path := writeTestSnapshot(t)
	var out, errOut bytes.Buffer
	err := run(context.Background(),
		[]string{"-snap", path, "-log-format", "yaml", "-print-footprint", "64500"},
		&out, &errOut)
	if err == nil || !strings.Contains(err.Error(), `must be json or text, got "yaml"`) {
		t.Fatalf("err = %v, want log-format rejection", err)
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	logger, err := newLogger("json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("probe", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json handler emitted non-JSON %q: %v", buf.String(), err)
	}
	buf.Reset()
	logger, err = newLogger("text", &buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("probe", "k", "v")
	if !strings.Contains(buf.String(), "msg=probe") {
		t.Fatalf("text handler output %q lacks msg=probe", buf.String())
	}
}

// TestReloadFailureLogShape pins the exact failure line operators alert
// on: level=ERROR, msg="reload failed", the generation still serving,
// and the snapshot error string. Drift here breaks alerting rules.
func TestReloadFailureLogShape(t *testing.T) {
	var buf bytes.Buffer
	logger, err := newLogger("json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	cur := &serve.Artifact{Gen: 3}
	logReload(logger, nil, cur, errors.New("snapshot: bad magic"))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("bad JSON %q: %v", buf.String(), err)
	}
	if rec["level"] != "ERROR" {
		t.Errorf("level = %v, want ERROR", rec["level"])
	}
	if rec["msg"] != "reload failed" {
		t.Errorf("msg = %v, want reload failed", rec["msg"])
	}
	if rec["generation"] != float64(3) {
		t.Errorf("generation = %v, want 3 (the artifact still serving)", rec["generation"])
	}
	if rec["error"] != "snapshot: bad magic" {
		t.Errorf("error = %v, want the snapshot error", rec["error"])
	}
}

// TestReloadSuccessLogShape covers the happy sibling so the two shapes
// stay distinguishable by msg alone.
func TestReloadSuccessLogShape(t *testing.T) {
	var buf bytes.Buffer
	logger, err := newLogger("json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	path := writeTestSnapshot(t)
	snap, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	art := &serve.Artifact{Path: path, Gen: 4, Snap: snap}
	logReload(logger, art, art, nil)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("bad JSON %q: %v", buf.String(), err)
	}
	if rec["msg"] != "reloaded" || rec["level"] != "INFO" {
		t.Errorf("got level=%v msg=%v, want INFO reloaded", rec["level"], rec["msg"])
	}
	if rec["generation"] != float64(4) || rec["ases"] != float64(1) {
		t.Errorf("generation=%v ases=%v, want 4 and 1", rec["generation"], rec["ases"])
	}
}
