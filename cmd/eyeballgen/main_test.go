package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSummary(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-small", "-seed", "5"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"world seed=5", "tier-1", "IXPs", "case study planted"} {
		if !strings.Contains(s, want) {
			t.Errorf("output lacks %q:\n%s", want, s)
		}
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-small", "-seed", "5", "-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ASN") || !strings.Contains(s, "RomaMedia") {
		t.Errorf("list output malformed:\n%.400s", s)
	}
	if lines := strings.Count(s, "\n"); lines < 100 {
		t.Errorf("list too short: %d lines", lines)
	}
}

func TestRunRIBDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dump.rib")
	var out bytes.Buffer
	if err := run([]string{"-small", "-seed", "5", "-rib", path}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("# eyeballas RIB vantage=")) {
		t.Errorf("RIB dump header missing: %.80s", data)
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Error("no confirmation line")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunJSONAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "world.json")
	snapPath := filepath.Join(dir, "world.snap")
	var out bytes.Buffer
	if err := run([]string{"-small", "-seed", "5", "-json", jsonPath, "-save", snapPath}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	j, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(j, []byte(`"ases"`)) || !bytes.Contains(j, []byte("RomaMedia")) {
		t.Error("world JSON malformed")
	}
	s, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(s, []byte(`"version":1`)) {
		t.Errorf("snapshot header missing: %.80s", s)
	}
	if !strings.Contains(out.String(), "snapshot") {
		t.Error("no snapshot confirmation")
	}
}
