package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eyeballas"
)

func TestRunSummary(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"world seed=5", "tier-1", "IXPs", "case study planted"} {
		if !strings.Contains(s, want) {
			t.Errorf("output lacks %q:\n%s", want, s)
		}
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ASN") || !strings.Contains(s, "RomaMedia") {
		t.Errorf("list output malformed:\n%.400s", s)
	}
	if lines := strings.Count(s, "\n"); lines < 100 {
		t.Errorf("list too short: %d lines", lines)
	}
}

func TestRunRIBDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dump.rib")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-rib", path}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("# eyeballas RIB vantage=")) {
		t.Errorf("RIB dump header missing: %.80s", data)
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Error("no confirmation line")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &out, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunJSONAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "world.json")
	snapPath := filepath.Join(dir, "world.snap")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-json", jsonPath, "-save", snapPath}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	j, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(j, []byte(`"ases"`)) || !bytes.Contains(j, []byte("RomaMedia")) {
		t.Error("world JSON malformed")
	}
	s, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(s, []byte(`"version":1`)) {
		t.Errorf("snapshot header missing: %.80s", s)
	}
	if !strings.Contains(out.String(), "snapshot") {
		t.Error("no snapshot confirmation")
	}
}

// TestRunPeersExport: -peers must stream the crawl to a headered file
// whose contents round-trip through the streaming file source with the
// exact count the CLI reported.
func TestRunPeersExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.peers")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-peers", path}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	var want int
	idx := strings.Index(out.String(), "wrote ")
	if idx < 0 {
		t.Fatalf("no confirmation line:\n%s", out.String())
	}
	if _, err := fmt.Sscanf(out.String()[idx:], "wrote %d crawled peers", &want); err != nil {
		t.Fatalf("cannot parse peer count: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("eyeballas-peers/1")) {
		t.Errorf("peers file header missing: %.60s", data)
	}
	src := eyeball.PeerFileSource(path)
	st, err := src.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]eyeball.Peer, 4096)
	got := 0
	for {
		n, err := st.Next(buf)
		got += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if got != want || want == 0 {
		t.Errorf("file source replayed %d peers, CLI reported %d", got, want)
	}
}

// TestRunBadInputs drives the user-error paths: unknown flags, bad
// fault specs, unwritable output paths. All must error, never panic.
func TestRunBadInputs(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"faults spec without rate", []string{"-small", "-faults", "nonsense"}},
		{"faults unknown point", []string{"-small", "-faults", "bogus=0.1"}},
		{"faults rate out of range", []string{"-small", "-faults", "rib-corrupt=-1"}},
		{"unwritable rib path", []string{"-small", "-rib", filepath.Join(dir, "no", "dir", "x.rib")}},
		{"unwritable json path", []string{"-small", "-json", filepath.Join(dir, "no", "dir", "x.json")}},
		{"unwritable snapshot path", []string{"-small", "-save", filepath.Join(dir, "no", "dir", "x.snap")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(context.Background(), tc.args, io.Discard, io.Discard); err == nil {
				t.Errorf("run(%q) accepted bad input", tc.args)
			}
		})
	}
}

// TestRunRIBDumpWithFaults: rib-truncate/rib-corrupt must mangle the
// dump deterministically — same plan, same bytes — and differ from the
// clean dump.
func TestRunRIBDumpWithFaults(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.rib")
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-rib", clean}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	faultArgs := func(path string) []string {
		return []string{"-small", "-seed", "5", "-rib", path,
			"-faults", "rib-truncate=0.0005,rib-corrupt=0.02", "-fault-seed", "3"}
	}
	m1 := filepath.Join(dir, "m1.rib")
	m2 := filepath.Join(dir, "m2.rib")
	var errBuf bytes.Buffer
	if err := run(context.Background(), faultArgs(m1), io.Discard, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), faultArgs(m2), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	c, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(m1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("same fault plan mangled the dump differently")
	}
	if bytes.Equal(a, c) {
		t.Error("fault plan left the dump untouched")
	}
	if !strings.Contains(errBuf.String(), "rib dump mangled") {
		t.Errorf("no mangle notice on stderr:\n%s", errBuf.String())
	}
}

// TestRunCancelledContext: a pre-cancelled context aborts before any
// work — the in-process equivalent of SIGINT at startup.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, []string{"-small"}, io.Discard, io.Discard); !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}
