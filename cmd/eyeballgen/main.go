// Command eyeballgen generates a synthetic Internet world and reports its
// ground truth: AS population by kind, level, and region, IXPs, and
// optionally a RouteViews-style RIB dump.
//
// Usage:
//
//	eyeballgen [-seed N] [-small] [-rib out.rib] [-peers out.peers] [-list]
//	           [-faults spec] [-fault-seed N]
//	           [-metrics out.json|out.prom|-] [-trace] [-pprof :6060]
//
// With -faults, the rib-truncate and rib-corrupt points mangle the -rib
// dump deterministically (a cut-off transfer, mangled rows) — the
// degraded inputs the pipeline's RIB reader must reject or survive.
// SIGINT/SIGTERM cancel the run and exit non-zero.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"

	"eyeballas"
	"eyeballas/internal/faults"
	"eyeballas/internal/obs"
	"eyeballas/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eyeballgen: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("eyeballgen", flag.ContinueOnError)
	fs.SetOutput(stdout)
	seed := fs.Uint64("seed", 42, "world generation seed")
	small := fs.Bool("small", false, "generate the test-scale world (~60 eyeball ASes)")
	ribPath := fs.String("rib", "", "write a RouteViews-style RIB dump from a tier-1 vantage to this file")
	jsonPath := fs.String("json", "", "write the full ground-truth world as JSON to this file")
	savePath := fs.String("save", "", "write a reloadable world snapshot to this file")
	peersPath := fs.String("peers", "", "stream the three simulated P2P crawls to this peers file (re-ingest with eyeballpipe pipelines via the streaming file source)")
	list := fs.Bool("list", false, "list every AS")
	faultFlags := faults.BindCLIFlags(fs)
	obsFlags := obs.BindCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := faultFlags.Plan()
	if err != nil {
		return err
	}
	reg := obsFlags.Registry()
	if reg != nil {
		parallel.SetMetrics(parallel.MetricsFrom(reg))
		defer parallel.SetMetrics(nil)
	}
	if err := obsFlags.Start(stderr); err != nil {
		return err
	}
	defer obsFlags.Finish(stdout, stderr)
	if err := ctx.Err(); err != nil {
		return err
	}

	var w *eyeball.World
	genSpan := reg.StartSpan("eyeballgen.generate")
	if *small {
		w, err = eyeball.GenerateSmallWorld(*seed)
	} else {
		w, err = eyeball.GenerateWorld(*seed)
	}
	genSpan.End()
	if err != nil {
		return err
	}
	if reg != nil {
		s := w.Stats()
		reg.Gauge("eyeball_world_ases").Set(float64(s.ASes))
		reg.Gauge("eyeball_world_ixps").Set(float64(s.IXPs))
		reg.Gauge("eyeball_world_peerings").Set(float64(s.Peerings))
	}

	s := w.Stats()
	fmt.Fprintf(stdout, "world seed=%d: %d ASes (%d tier-1, %d transit, %d eyeball, %d content)\n",
		*seed, s.ASes, s.Tier1s, s.Transits, s.Eyeballs, s.Contents)
	fmt.Fprintf(stdout, "  %d IXPs, %d peerings, %d provider links\n", s.IXPs, s.Peerings, s.ProviderLinks)
	fmt.Fprintf(stdout, "  eyeballs by region: %v\n", s.ByRegion)
	fmt.Fprintf(stdout, "  eyeballs by level:  %v\n", s.ByLevel)
	if cs := w.CaseStudy(); cs != nil {
		fmt.Fprintf(stdout, "  case study planted: subject AS %d (%s)\n", cs.Subject, w.AS(cs.Subject).Name)
	}

	if *list {
		tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "ASN\tNAME\tKIND\tLEVEL\tCC\tPOPS\tCUSTOMERS")
		for _, a := range w.ASes() {
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%d\t%d\n",
				a.ASN, a.Name, a.Kind, a.Level, a.Country, len(a.PoPs), a.Customers)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if *ribPath != "" {
		vantage := w.ASNs()[0] // the first AS is a tier-1 by construction
		rib, err := eyeball.BuildRIB(w, vantage)
		if err != nil {
			return err
		}
		f, err := os.Create(*ribPath)
		if err != nil {
			return err
		}
		trunc := plan.Injector(faults.RIBTruncate)
		corrupt := plan.Injector(faults.RIBCorrupt)
		if trunc != nil || corrupt != nil {
			// Render the dump in memory, then replay it through the
			// rib-truncate / rib-corrupt injectors: a deterministic model
			// of a cut-off transfer and mangled rows.
			var buf bytes.Buffer
			if _, err := rib.WriteTo(&buf); err != nil {
				f.Close()
				return err
			}
			st, err := faults.MangleLines(f, &buf, trunc, corrupt)
			if err != nil {
				f.Close()
				return err
			}
			fmt.Fprintf(stderr, "faults: rib dump mangled: %d lines kept, %d corrupted, truncated=%v\n",
				st.Lines, st.Corrupted, st.Truncated)
		} else if _, err := rib.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  wrote %d RIB entries (vantage AS %d) to %s\n", rib.Len(), vantage, *ribPath)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		if err := eyeball.WriteWorldJSON(f, w); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  wrote world JSON to %s\n", *jsonPath)
	}

	if *peersPath != "" {
		f, err := os.Create(*peersPath)
		if err != nil {
			return err
		}
		// The crawl is streamed unit by unit into the file — memory stays
		// bounded no matter the world scale — and the sequence is exactly
		// what a pipeline run with the same seed consumes.
		n, err := eyeball.WriteCrawlPeers(ctx, f, w, eyeball.DefaultCrawlConfig(), *seed)
		if err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  wrote %d crawled peers to %s\n", n, *peersPath)
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if err := eyeball.SaveWorld(f, w); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  wrote world snapshot to %s\n", *savePath)
	}
	return obsFlags.Finish(stdout, stderr)
}
