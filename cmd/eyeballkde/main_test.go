package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultSubject(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 1", "bandwidth 40", "PoP-level footprint"} {
		if !strings.Contains(s, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestRunExplicitASN(t *testing.T) {
	// Find the planted case-study subject's ASN via a first run, then
	// analyze it explicitly.
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-asn", "330", "-bw", "40", "-multiscale"}, &out, io.Discard); err != nil {
		// ASN numbering is generator-dependent; skip rather than fail if
		// 330 isn't eligible at this seed.
		if strings.Contains(err.Error(), "not in the target dataset") {
			t.Skip("AS 330 not eligible at this seed")
		}
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "classified") || !strings.Contains(s, "multi-scale refinement") {
		t.Errorf("output malformed:\n%s", s)
	}
}

func TestRunUnknownASN(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-asn", "999999"}, &out, io.Discard); err == nil {
		t.Error("unknown ASN accepted")
	}
}

func TestParseBandwidths(t *testing.T) {
	got, err := parseBandwidths("10, 40,80")
	if err != nil || len(got) != 3 || got[0] != 10 || got[2] != 80 {
		t.Errorf("parse = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "-5", "10,,20", "0"} {
		if _, err := parseBandwidths(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestRunSurfaceExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "surface.dat")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-bw", "40", "-surface", path}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "bandwidth 40 km grid") {
		t.Errorf("surface header missing: %.80s", s)
	}
	// Rows are lon lat density triples.
	lines := strings.Split(s, "\n")
	dataLines := 0
	for _, l := range lines {
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		if len(strings.Fields(l)) != 3 {
			t.Fatalf("bad surface row %q", l)
		}
		dataLines++
	}
	if dataLines < 100 {
		t.Errorf("only %d surface rows", dataLines)
	}
}

// TestRunBadInputs drives the user-error paths: unknown flags, bad
// bandwidth lists, bad fault specs, ASes outside the dataset.
func TestRunBadInputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"bandwidth not a number", []string{"-small", "-bw", "abc"}},
		{"bandwidth negative", []string{"-small", "-bw", "-5"}},
		{"bandwidth empty entry", []string{"-small", "-bw", ","}},
		{"faults spec without rate", []string{"-small", "-faults", "nonsense"}},
		{"faults unknown point", []string{"-small", "-faults", "bogus=0.1"}},
		{"asn outside dataset", []string{"-small", "-seed", "5", "-asn", "1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(context.Background(), tc.args, io.Discard, io.Discard); err == nil {
				t.Errorf("run(%q) accepted bad input", tc.args)
			}
		})
	}
}

// TestRunCancelledContext: a pre-cancelled context aborts the run with
// ctx.Err() before the pipeline produces anything.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, []string{"-small", "-seed", "5"}, io.Discard, io.Discard); !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}

// TestRunWithFaultsStillAnalyzes: a mild fault plan degrades the input
// but the analysis still completes deterministically.
func TestRunWithFaultsStillAnalyzes(t *testing.T) {
	args := []string{"-small", "-seed", "5", "-faults", "geo-miss=0.05", "-fault-seed", "11"}
	var a, b bytes.Buffer
	if err := run(context.Background(), args, &a, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), args, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same fault plan produced different analysis")
	}
	if !strings.Contains(a.String(), "bandwidth") {
		t.Errorf("faulted analysis incomplete:\n%s", a.String())
	}
}
