package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultSubject(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-small", "-seed", "5"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 1", "bandwidth 40", "PoP-level footprint"} {
		if !strings.Contains(s, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestRunExplicitASN(t *testing.T) {
	// Find the planted case-study subject's ASN via a first run, then
	// analyze it explicitly.
	var out bytes.Buffer
	if err := run([]string{"-small", "-seed", "5", "-asn", "330", "-bw", "40", "-multiscale"}, &out, io.Discard); err != nil {
		// ASN numbering is generator-dependent; skip rather than fail if
		// 330 isn't eligible at this seed.
		if strings.Contains(err.Error(), "not in the target dataset") {
			t.Skip("AS 330 not eligible at this seed")
		}
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "classified") || !strings.Contains(s, "multi-scale refinement") {
		t.Errorf("output malformed:\n%s", s)
	}
}

func TestRunUnknownASN(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-small", "-seed", "5", "-asn", "999999"}, &out, io.Discard); err == nil {
		t.Error("unknown ASN accepted")
	}
}

func TestParseBandwidths(t *testing.T) {
	got, err := parseBandwidths("10, 40,80")
	if err != nil || len(got) != 3 || got[0] != 10 || got[2] != 80 {
		t.Errorf("parse = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "-5", "10,,20", "0"} {
		if _, err := parseBandwidths(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestRunSurfaceExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "surface.dat")
	var out bytes.Buffer
	if err := run([]string{"-small", "-seed", "5", "-bw", "40", "-surface", path}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "bandwidth 40 km grid") {
		t.Errorf("surface header missing: %.80s", s)
	}
	// Rows are lon lat density triples.
	lines := strings.Split(s, "\n")
	dataLines := 0
	for _, l := range lines {
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		if len(strings.Fields(l)) != 3 {
			t.Fatalf("bad surface row %q", l)
		}
		dataLines++
	}
	if dataLines < 100 {
		t.Errorf("only %d surface rows", dataLines)
	}
}
