// Command eyeballkde analyzes one eyeball AS's geographic footprint: it
// runs the measurement pipeline, estimates the KDE density surface at one
// or more bandwidths, and prints the PoP-level footprint with an ASCII
// density map — the paper's Figure 1 view for any AS.
//
// Usage:
//
//	eyeballkde [-seed N] [-small] [-asn N] [-bw 20,40,60] [-multiscale]
//	           [-faults spec] [-fault-seed N]
//	           [-metrics out.json|out.prom|-] [-trace] [-pprof :6060]
//
// Without -asn, the Figure 1 subject (the largest country-level AS) is
// analyzed. SIGINT/SIGTERM cancel the run: the pipeline and KDE workers
// stop within one work unit and the process exits non-zero.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"eyeballas"
	"eyeballas/internal/faults"
	"eyeballas/internal/obs"
	"eyeballas/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eyeballkde: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("eyeballkde", flag.ContinueOnError)
	fs.SetOutput(stdout)
	seed := fs.Uint64("seed", 42, "world and crawl seed")
	small := fs.Bool("small", false, "use the test-scale world")
	asn := fs.Int("asn", 0, "AS number to analyze (0 = the Figure 1 subject)")
	bwList := fs.String("bw", "20,40,60", "comma-separated kernel bandwidths in km")
	multiscale := fs.Bool("multiscale", false, "also run the multi-scale PoP refinement")
	surface := fs.String("surface", "", "write the density surface(s) as gnuplot-ready lon/lat/density rows to this file (one block per bandwidth)")
	workers := fs.Int("workers", 0, "worker goroutines for the KDE convolution and fan-outs (0 = all CPUs, 1 = serial; output is identical either way)")
	batch := fs.Int("batch", 0, "peers per streaming ingestion batch for the pipeline build (0 = default; output is identical for every setting)")
	faultFlags := faults.BindCLIFlags(fs)
	obsFlags := obs.BindCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := faultFlags.Plan()
	if err != nil {
		return err
	}
	reg := obsFlags.Registry()
	if reg != nil {
		parallel.SetMetrics(parallel.MetricsFrom(reg))
		defer parallel.SetMetrics(nil)
	}
	if err := obsFlags.Start(stderr); err != nil {
		return err
	}
	defer obsFlags.Finish(stdout, stderr)

	bandwidths, err := parseBandwidths(*bwList)
	if err != nil {
		return err
	}

	var env *eyeball.Experiments
	if *small {
		env, err = eyeball.NewSmallExperimentsCtx(ctx, *seed, reg, plan, eyeball.WithBatchSize(*batch))
	} else {
		env, err = eyeball.NewExperimentsCtx(ctx, *seed, reg, plan, eyeball.WithBatchSize(*batch))
	}
	if err != nil {
		return err
	}

	subject := eyeball.ASN(*asn)
	if subject == 0 {
		f, err := eyeball.RunFigure1(env, bandwidths)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, f.Render())
		subject = f.ASN
	} else {
		rec := env.Dataset.AS(subject)
		if rec == nil {
			return fmt.Errorf("AS %d is not in the target dataset (below the peer floor, filtered, or unknown)", *asn)
		}
		a := env.World.AS(rec.ASN)
		fmt.Fprintf(stdout, "AS %d (%s): %d usable peers, classified %s-level (%s)\n",
			rec.ASN, a.Name, len(rec.Samples), rec.Class.Level, rec.Class.Place)
		for _, bw := range bandwidths {
			fp, err := eyeball.EstimateFootprintCtx(ctx, env.World, rec.Samples, eyeball.FootprintOptions{BandwidthKm: bw, Workers: *workers, Obs: reg})
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "\nbandwidth %.0f km: %d peaks, %d PoPs, %d partition(s)\n",
				bw, len(fp.Peaks), len(fp.PoPs), len(fp.Partitions))
			fmt.Fprintf(stdout, "PoP-level footprint: %s\n", fp.CityList())
		}
	}
	if *multiscale {
		if err := renderMultiScale(ctx, stdout, env, subject, *workers, reg); err != nil {
			return err
		}
	}
	if *surface != "" {
		if err := writeSurface(ctx, *surface, env, subject, bandwidths, *workers, reg); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote density surface(s) to %s\n", *surface)
	}
	return obsFlags.Finish(stdout, stderr)
}

// writeSurface dumps each bandwidth's density grid as whitespace-separated
// "lon lat density" rows, with a blank line between grid rows and a
// double blank line between bandwidth blocks — the format gnuplot's
// `splot ... with pm3d` consumes, recreating the paper's 3-D Figure 1.
func writeSurface(ctx context.Context, path string, env *eyeball.Experiments, asn eyeball.ASN, bandwidths []float64, workers int, reg *eyeball.Registry) error {
	rec := env.Dataset.AS(asn)
	if rec == nil {
		return fmt.Errorf("AS %d is not in the target dataset", asn)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, bw := range bandwidths {
		fp, err := eyeball.EstimateFootprintCtx(ctx, env.World, rec.Samples, eyeball.FootprintOptions{BandwidthKm: bw, Workers: workers, Obs: reg})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# AS %d bandwidth %.0f km grid %dx%d cell %.1f km\n",
			asn, bw, fp.Grid.W, fp.Grid.H, fp.Grid.Cell)
		for j := 0; j < fp.Grid.H; j++ {
			for i := 0; i < fp.Grid.W; i++ {
				p := fp.Projection.ToGeo(fp.Grid.Center(i, j))
				fmt.Fprintf(w, "%.4f %.4f %.6g\n", p.Lon, p.Lat, fp.Grid.At(i, j))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

func renderMultiScale(ctx context.Context, stdout io.Writer, env *eyeball.Experiments, asn eyeball.ASN, workers int, reg *eyeball.Registry) error {
	rec := env.Dataset.AS(asn)
	ms, err := eyeball.MultiScaleFootprintCtx(ctx, env.World, rec.Samples, eyeball.MultiScaleOptions{
		Base: eyeball.FootprintOptions{Workers: workers, Obs: reg},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nmulti-scale refinement (10-80 km): %d PoPs\n", len(ms))
	for _, p := range ms {
		fmt.Fprintf(stdout, "  %-16s density %.3f  scales %2.0f-%2.0f km  persistence %d  anchor %s\n",
			p.City.Name, p.Density, p.FinestKm, p.CoarsestKm, p.Persistence, p.Anchor)
	}
	return nil
}

func parseBandwidths(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid bandwidth %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no bandwidths given")
	}
	return out, nil
}
