package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eyeballas"
)

func TestRunPipeline(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-small", "-seed", "5"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"target dataset:", "drops:", "Table 1", "Country"} {
		if !strings.Contains(s, want) {
			t.Errorf("output lacks %q:\n%s", want, s)
		}
	}
}

func TestRunMinPeersOverride(t *testing.T) {
	var loose, strict bytes.Buffer
	if err := run([]string{"-small", "-seed", "5", "-minpeers", "50"}, &loose, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-small", "-seed", "5", "-minpeers", "2000"}, &strict, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strict.String(), "below 2000 peers") {
		t.Error("override not reflected in output")
	}
	// A higher floor admits fewer ASes.
	if countASes(t, loose.String()) <= countASes(t, strict.String()) {
		t.Errorf("floor 50 admitted %d ASes, floor 2000 admitted %d",
			countASes(t, loose.String()), countASes(t, strict.String()))
	}
}

func countASes(t *testing.T, out string) int {
	t.Helper()
	idx := strings.Index(out, "target dataset: ")
	if idx < 0 {
		t.Fatalf("no dataset line in %.80q", out)
	}
	var n int
	if _, err := fmt.Sscanf(out[idx:], "target dataset: %d", &n); err != nil {
		t.Fatalf("cannot parse AS count: %v", err)
	}
	return n
}

func TestRunDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.csv")
	var out bytes.Buffer
	if err := run([]string{"-small", "-seed", "5", "-dump", path}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("asn,name,kind,level")) {
		t.Errorf("CSV header wrong: %.60s", data)
	}
	if lines := bytes.Count(data, []byte("\n")); lines < 10 {
		t.Errorf("CSV too short: %d lines", lines)
	}
}

func TestRunFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "world.snap")
	// Generate and save a world via the public API, then drive the
	// pipeline off the snapshot.
	w, err := eyeball.GenerateSmallWorld(5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := eyeball.SaveWorld(f, w); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var fromSnap, direct bytes.Buffer
	if err := run([]string{"-world", snap, "-seed", "5"}, &fromSnap, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-small", "-seed", "5"}, &direct, io.Discard); err != nil {
		t.Fatal(err)
	}
	if fromSnap.String() != direct.String() {
		t.Error("pipeline over a snapshot differs from pipeline over the generated world")
	}
}
