package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eyeballas"
)

func TestRunPipeline(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"target dataset:", "drops:", "Table 1", "Country"} {
		if !strings.Contains(s, want) {
			t.Errorf("output lacks %q:\n%s", want, s)
		}
	}
}

func TestRunMinPeersOverride(t *testing.T) {
	var loose, strict bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-minpeers", "50"}, &loose, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-minpeers", "2000"}, &strict, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strict.String(), "below 2000 peers") {
		t.Error("override not reflected in output")
	}
	// A higher floor admits fewer ASes.
	if countASes(t, loose.String()) <= countASes(t, strict.String()) {
		t.Errorf("floor 50 admitted %d ASes, floor 2000 admitted %d",
			countASes(t, loose.String()), countASes(t, strict.String()))
	}
}

func countASes(t *testing.T, out string) int {
	t.Helper()
	idx := strings.Index(out, "target dataset: ")
	if idx < 0 {
		t.Fatalf("no dataset line in %.80q", out)
	}
	var n int
	if _, err := fmt.Sscanf(out[idx:], "target dataset: %d", &n); err != nil {
		t.Fatalf("cannot parse AS count: %v", err)
	}
	return n
}

func TestRunDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.csv")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-dump", path}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("asn,name,kind,level")) {
		t.Errorf("CSV header wrong: %.60s", data)
	}
	if lines := bytes.Count(data, []byte("\n")); lines < 10 {
		t.Errorf("CSV too short: %d lines", lines)
	}
}

func TestRunFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "world.snap")
	// Generate and save a world via the public API, then drive the
	// pipeline off the snapshot.
	w, err := eyeball.GenerateSmallWorld(5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := eyeball.SaveWorld(f, w); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var fromSnap, direct bytes.Buffer
	if err := run(context.Background(), []string{"-world", snap, "-seed", "5"}, &fromSnap, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-small", "-seed", "5"}, &direct, io.Discard); err != nil {
		t.Fatal(err)
	}
	if fromSnap.String() != direct.String() {
		t.Error("pipeline over a snapshot differs from pipeline over the generated world")
	}
}

// TestRunStreamIdenticalToBatch: -stream must produce byte-identical
// stdout to the default materialized path, for any -batch, with and
// without fault injection — the CLI-level face of the bit-identity
// guarantee the differential harness pins at the package level.
func TestRunStreamIdenticalToBatch(t *testing.T) {
	cases := []struct {
		name   string
		shared []string // args both runs get (fault plans must match)
		stream []string // extra args for the streaming run only
	}{
		{"default batch", nil, []string{"-stream"}},
		{"batch 7", nil, []string{"-stream", "-batch", "7"}},
		{"batch larger than crawl", nil, []string{"-stream", "-batch", "100000"}},
		{"with faults", []string{"-faults", "geo-miss=0.05,crawl-dup=0.05", "-fault-seed", "7"}, []string{"-stream"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := append([]string{"-small", "-seed", "5"}, tc.shared...)
			var ref, got bytes.Buffer
			if err := run(context.Background(), base, &ref, io.Discard); err != nil {
				t.Fatal(err)
			}
			if err := run(context.Background(), append(append([]string{}, base...), tc.stream...), &got, io.Discard); err != nil {
				t.Fatal(err)
			}
			if ref.String() != got.String() {
				t.Errorf("-stream output differs from batch:\n--- batch ---\n%s\n--- stream ---\n%s", ref.String(), got.String())
			}
		})
	}
}

// TestRunSampleCap: -as-sample-cap must succeed and keep the funnel
// conserved; the dataset head line is unchanged (the cap redistributes
// retention, not eligibility, when generous).
func TestRunSampleCap(t *testing.T) {
	var capped bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-stream", "-as-sample-cap", "100000"}, &capped, io.Discard); err != nil {
		t.Fatal(err)
	}
	var ref bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5"}, &ref, io.Discard); err != nil {
		t.Fatal(err)
	}
	// A cap far above any AS's peer count is exactly the uncapped build.
	if capped.String() != ref.String() {
		t.Error("generous -as-sample-cap changed the output")
	}
}

// TestRunBadInputs drives every user-error path through run(): unknown
// flags, malformed fault specs, unreadable or corrupt input files. Each
// must surface as a non-nil error, never a panic or a zero exit.
func TestRunBadInputs(t *testing.T) {
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.snap")
	if err := os.WriteFile(corrupt, []byte("not a world snapshot\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"faults spec without rate", []string{"-small", "-faults", "nonsense"}},
		{"faults unknown point", []string{"-small", "-faults", "bogus-point=0.1"}},
		{"faults rate out of range", []string{"-small", "-faults", "geo-miss=2"}},
		{"faults rate not a number", []string{"-small", "-faults", "geo-miss=lots"}},
		{"missing world file", []string{"-world", filepath.Join(dir, "absent.snap")}},
		{"corrupt world file", []string{"-world", corrupt}},
		{"unwritable dump path", []string{"-small", "-seed", "5", "-dump", filepath.Join(dir, "no", "such", "dir", "x.csv")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(context.Background(), tc.args, io.Discard, io.Discard); err == nil {
				t.Errorf("run(%q) accepted bad input", tc.args)
			}
		})
	}
}

// TestRunFaultsDeterministic: the same -faults spec and -fault-seed must
// reproduce byte-identical output; a different seed must not.
func TestRunFaultsDeterministic(t *testing.T) {
	args := []string{"-small", "-seed", "5", "-faults", "geo-miss=0.1,origin-miss=0.02", "-fault-seed", "7"}
	var a, b bytes.Buffer
	if err := run(context.Background(), args, &a, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), args, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same fault plan produced different output")
	}
	var c bytes.Buffer
	other := append(args[:len(args)-1:len(args)-1], "8")
	if err := run(context.Background(), other, &c, io.Discard); err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different fault seed produced identical output")
	}
}

// TestRunBudgetExceeded: a fault rate over the configured budget must
// fail the build with a budget error, not silently degrade.
func TestRunBudgetExceeded(t *testing.T) {
	err := run(context.Background(),
		[]string{"-small", "-seed", "5", "-faults", "geo-miss=0.5", "-max-geo-miss", "0.2"},
		io.Discard, io.Discard)
	if err == nil {
		t.Fatal("budget-exceeding run succeeded")
	}
	if !strings.Contains(err.Error(), "error budget exceeded") {
		t.Errorf("error %v does not mention the budget", err)
	}
}

// TestRunSingleDBDegraded: -single-db must succeed and announce the
// degraded dataset on stderr.
func TestRunSingleDBDegraded(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-single-db"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "degraded:") {
		t.Errorf("no degraded notice on stderr:\n%s", errBuf.String())
	}
	if !strings.Contains(out.String(), "target dataset:") {
		t.Error("single-db run produced no dataset")
	}
}

// TestRunCancelledContext: a pre-cancelled context must abort the run
// with ctx.Err() — the in-process equivalent of SIGINT before work
// starts.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-small", "-seed", "5"}, io.Discard, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}

// TestRunCancelWritesPartialMetrics: cancellation mid-run must still
// leave a -metrics snapshot on disk (the deferred idempotent Finish).
func TestRunCancelWritesPartialMetrics(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "partial.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, []string{"-small", "-seed", "5", "-metrics", path}, io.Discard, io.Discard); err == nil {
		t.Fatal("cancelled run succeeded")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no partial metrics snapshot: %v", err)
	}
	if !bytes.Contains(data, []byte("{")) {
		t.Errorf("snapshot not JSON: %.60s", data)
	}
}
