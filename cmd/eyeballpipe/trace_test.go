package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// traceDetail mirrors trace.Detail's JSON envelope closely enough to
// assert on -trace-out output without importing internal packages.
type traceDetail struct {
	TraceID     string    `json:"trace_id"`
	Traceparent string    `json:"traceparent"`
	DurationNS  int64     `json:"duration_ns"`
	Spans       int       `json:"spans"`
	Root        traceNode `json:"root"`
}

type traceNode struct {
	Name     string      `json:"name"`
	Children []traceNode `json:"children"`
}

// TestTraceOut: one offline build emits a parseable canonical trace —
// the eyeballpipe.build root over pipeline.run with crawl, origin-table,
// and build stages — and the trace ID derives from -seed.
func TestTraceOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "build-trace.json")
	var stderr bytes.Buffer
	if err := run(context.Background(),
		[]string{"-small", "-seed", "5", "-trace-out", out},
		io.Discard, &stderr); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var d traceDetail
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("trace-out is not valid JSON: %v\n%s", err, raw)
	}
	if d.Root.Name != "eyeballpipe.build" {
		t.Errorf("root span = %q, want eyeballpipe.build", d.Root.Name)
	}
	if len(d.TraceID) != 32 {
		t.Errorf("trace_id = %q, want 32 hex digits", d.TraceID)
	}
	if !strings.Contains(d.Traceparent, d.TraceID) {
		t.Errorf("traceparent %q does not embed trace_id %q", d.Traceparent, d.TraceID)
	}
	if d.Spans < 5 {
		t.Errorf("spans = %d, want the stage tree (>= 5)", d.Spans)
	}
	if d.DurationNS <= 0 {
		t.Errorf("duration_ns = %d, want positive", d.DurationNS)
	}
	if len(d.Root.Children) != 1 || d.Root.Children[0].Name != "pipeline.run" {
		t.Fatalf("root children = %+v, want one pipeline.run", d.Root.Children)
	}
	var stages []string
	for _, c := range d.Root.Children[0].Children {
		stages = append(stages, c.Name)
	}
	joined := strings.Join(stages, ",")
	for _, want := range []string{"crawl", "bgp.origin_table", "pipeline.build"} {
		if !strings.Contains(joined, want) {
			t.Errorf("pipeline.run stages %v lack %q", stages, want)
		}
	}
	if !strings.Contains(stderr.String(), "wrote build trace") {
		t.Errorf("stderr lacks trace summary: %q", stderr.String())
	}

	// Same seed, second run: the trace's identity (IDs and shape,
	// not timings) reproduces.
	out2 := filepath.Join(t.TempDir(), "build-trace-2.json")
	if err := run(context.Background(),
		[]string{"-small", "-seed", "5", "-trace-out", out2},
		io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	var d2 traceDetail
	if err := json.Unmarshal(raw2, &d2); err != nil {
		t.Fatal(err)
	}
	if d2.TraceID != d.TraceID {
		t.Errorf("seeded trace IDs differ across runs: %s vs %s", d.TraceID, d2.TraceID)
	}
	if d2.Spans != d.Spans {
		t.Errorf("span counts differ across runs: %d vs %d", d.Spans, d2.Spans)
	}
}
