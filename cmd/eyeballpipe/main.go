// Command eyeballpipe runs the paper's four-step measurement pipeline
// (§2) over a synthetic world and prints the target-dataset profile —
// the reproduction of Table 1 — along with the conditioning statistics.
// With -dump it also exports the per-AS dataset as CSV.
//
// Usage:
//
//	eyeballpipe [-seed N] [-small] [-minpeers N] [-dump dataset.csv]
//	            [-snapshot out.snap] [-snapshot-label s]
//	            [-footprint ASN] [-footprint-out fp.json] [-footprint-bw KM]
//	            [-faults spec] [-fault-seed N] [-max-geo-miss F] [-max-origin-miss F]
//	            [-single-db] [-single-db-fallback]
//	            [-stream] [-batch N] [-as-sample-cap N]
//	            [-quiet] [-metrics out.json|out.prom|-] [-trace] [-pprof :6060]
//	            [-trace-out build-trace.json]
//
// -snapshot writes the built dataset plus the compiled LPM origin table
// as a versioned binary serving artifact for cmd/eyeballserve; -footprint
// renders one AS's PoP footprint with the same code path the server's
// /v1/footprint endpoint uses, so the two outputs are byte-identical.
//
// -stream runs the bounded-memory ingestion path: the crawl is generated
// unit by unit and fed straight into the pipeline, never materialized.
// Output is bit-identical to the default path (CI diffs the two).
//
// SIGINT/SIGTERM cancel the run: the pipeline's workers stop within one
// work unit, the process exits non-zero, and -metrics still writes a
// partial snapshot of the counters flushed so far.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"eyeballas"
	"eyeballas/internal/faults"
	"eyeballas/internal/obs"
	"eyeballas/internal/parallel"
	"eyeballas/internal/serve"
	"eyeballas/internal/snapshot"
	"eyeballas/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eyeballpipe: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("eyeballpipe", flag.ContinueOnError)
	fs.SetOutput(stdout)
	seed := fs.Uint64("seed", 42, "world and crawl seed")
	small := fs.Bool("small", false, "use the test-scale world")
	minPeers := fs.Int("minpeers", 0, "override the per-AS peer floor (0 = scale default)")
	workers := fs.Int("workers", 0, "worker goroutines for the pipeline's parallel stages (0 = all CPUs, 1 = serial; output is identical either way)")
	dump := fs.String("dump", "", "write the per-AS target dataset as CSV to this file")
	worldPath := fs.String("world", "", "load the world from a snapshot written by eyeballgen -save instead of generating")
	quiet := fs.Bool("quiet", false, "suppress the one-line funnel summary on stderr")
	maxGeoMiss := fs.Float64("max-geo-miss", 0, "abort the build when the geolocation miss fraction exceeds this budget (0 disables)")
	maxOriginMiss := fs.Float64("max-origin-miss", 0, "abort the build when the origin-lookup miss fraction exceeds this budget (0 disables)")
	singleDB := fs.Bool("single-db", false, "run with the primary geolocation database only (no cross-database error estimates; dataset marked degraded)")
	singleDBFallback := fs.Bool("single-db-fallback", false, "when exactly one database blows the geo budget, retry with the survivor instead of failing")
	stream := fs.Bool("stream", false, "stream the crawl straight into the pipeline without materializing it (bounded memory; output is bit-identical to the default path)")
	batch := fs.Int("batch", 0, "peers per streaming ingestion batch (0 = default; bounds transient memory only, output is identical for every setting)")
	sampleCap := fs.Int("as-sample-cap", 0, "cap per-AS retained samples via a deterministic reservoir + quantile sketch (0 = keep all, exact statistics)")
	snapPath := fs.String("snapshot", "", "write the built dataset + compiled LPM as a versioned binary serving artifact (eyeballas-snap/1) to this file")
	snapLabel := fs.String("snapshot-label", "eyeballpipe", "provenance label recorded in the snapshot artifact")
	footprintASN := fs.Int("footprint", 0, "render the PoP-level footprint of this AS as canonical JSON (same bytes eyeballserve's /v1/footprint returns)")
	footprintOut := fs.String("footprint-out", "", "write the -footprint JSON to this file instead of stdout")
	footprintBW := fs.Float64("footprint-bw", 40, "kernel bandwidth in km for -footprint")
	traceOut := fs.String("trace-out", "", "write one offline build trace (stage spans with trace parentage, IDs derived from -seed) as canonical JSON to this file")
	faultFlags := faults.BindCLIFlags(fs)
	obsFlags := obs.BindCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := faultFlags.Plan()
	if err != nil {
		return err
	}
	reg := obsFlags.Registry() // nil unless an observability flag was given
	if reg != nil {
		parallel.SetMetrics(parallel.MetricsFrom(reg))
		defer parallel.SetMetrics(nil)
	}
	if err := obsFlags.Start(stderr); err != nil {
		return err
	}
	// Idempotent: on the normal path the explicit Finish below does the
	// work; on error paths (including cancellation mid-pipeline) this
	// deferred call still writes a partial -metrics snapshot.
	defer obsFlags.Finish(stdout, stderr)

	var w *eyeball.World
	switch {
	case *worldPath != "":
		f, err2 := os.Open(*worldPath)
		if err2 != nil {
			return err2
		}
		w, err = eyeball.LoadWorld(f)
		f.Close()
	case *small:
		w, err = eyeball.GenerateSmallWorld(*seed)
	default:
		w, err = eyeball.GenerateWorld(*seed)
	}
	if err != nil {
		return err
	}

	cfg := eyeball.DefaultPipelineConfig()
	if *minPeers > 0 {
		cfg.MinPeers = *minPeers
	}
	cfg.Workers = *workers
	cfg.Obs = reg
	cfg.Faults = plan
	cfg.MaxGeoMissFrac = *maxGeoMiss
	cfg.MaxOriginMissFrac = *maxOriginMiss
	cfg.SingleDB = *singleDB
	cfg.SingleDBFallback = *singleDBFallback
	cfg.BatchSize = *batch
	cfg.MaxSamplesPerAS = *sampleCap
	// -trace-out wraps the whole build in one request-style trace: the
	// pipeline's stage spans pick up trace parentage from the context,
	// so an offline build emits the same trace shape a served request
	// does. IDs derive from -seed, making the trace's identity — though
	// not its timings — reproducible.
	var troot *trace.Span
	if *traceOut != "" {
		tracer := trace.New(trace.Options{Seed: *seed})
		troot = tracer.Start("eyeballpipe.build")
		troot.SetInt("seed", int64(*seed))
		ctx = trace.NewContext(ctx, troot)
	}
	var ds *eyeball.Dataset
	var origins *eyeball.OriginTable
	if *stream {
		ds, origins, err = eyeball.BuildTargetDatasetStreamExportCtx(ctx, w, eyeball.DefaultCrawlConfig(), cfg, *seed)
	} else {
		ds, origins, err = eyeball.BuildTargetDatasetExportCtx(ctx, w, eyeball.DefaultCrawlConfig(), cfg, *seed)
	}
	if troot != nil {
		troot.End()
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			return ferr
		}
		if werr := trace.WriteJSON(f, troot); werr != nil {
			f.Close()
			return werr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
		fmt.Fprintf(stderr, "wrote build trace (%d spans) to %s\n", troot.SpanCount(), *traceOut)
	}
	if err != nil {
		return err
	}
	if ds.Degraded {
		fmt.Fprintf(stderr, "degraded: %s\n", ds.DegradedReason)
	}
	if !*quiet {
		// The funnel is always built; the summary is the paper's 89.1M →
		// 48M conditioning story in one line.
		fmt.Fprintf(stderr, "funnel: %s\n", ds.Funnel.Summary())
	}

	fmt.Fprintf(stdout, "target dataset: %d eligible eyeball ASes, %d usable peers\n",
		len(ds.Order), ds.TotalPeers)
	fmt.Fprintf(stdout, "drops: %d no-city, %d geo-err>%.0fkm, %d unmapped IP, %d duplicate IP\n",
		ds.Drops.NoCityRecord, ds.Drops.HighGeoErr, cfg.MaxGeoErrKm, ds.Drops.UnmappedIP, ds.Drops.DupIP)
	fmt.Fprintf(stdout, "       %d ASes below %d peers, %d ASes with p90 geo err > %.0f km\n\n",
		ds.Drops.SmallAS, cfg.MinPeers, ds.Drops.HighErrAS, cfg.MaxP90GeoErrKm)

	env := &eyeball.Experiments{World: w, Dataset: ds}
	fmt.Fprint(stdout, eyeball.RunTable1(env).Render())

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			return err
		}
		if err := eyeball.WriteDatasetCSV(f, w, ds); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote per-AS dataset to %s\n", *dump)
	}

	if *snapPath != "" {
		snap := &eyeball.DatasetSnapshot{
			Meta:    eyeball.SnapshotMeta{Seed: *seed, Label: *snapLabel},
			Dataset: ds,
			Origins: origins,
		}
		data := snapshot.Encode(snap)
		// The snap-corrupt fault point mangles the rendered bytes before
		// they reach disk — the harness that proves readers reject
		// checksum-damaged artifacts end to end.
		if flipped := snapshot.Mangle(data, plan.Injector(faults.SnapCorrupt)); flipped > 0 {
			fmt.Fprintf(stderr, "faults: snap-corrupt flipped %d bytes of %s\n", flipped, *snapPath)
		}
		// Crash-safe publish: the artifact lands via temp file + fsync +
		// rename, so a serving process reloading this path mid-write can
		// never read a torn snapshot.
		if err := snapshot.WriteFileAtomicBytes(*snapPath, data); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote snapshot artifact to %s (%d bytes, %d ASes)\n",
			*snapPath, len(data), len(ds.Order))
	}

	if *footprintASN != 0 {
		rec := ds.AS(eyeball.ASN(*footprintASN))
		if rec == nil {
			return fmt.Errorf("eyeballpipe: -footprint AS%d not in dataset", *footprintASN)
		}
		body, err := serve.RenderFootprint(ctx, eyeball.Gazetteer(), rec, *footprintBW, cfg.Workers, reg)
		if err != nil {
			return err
		}
		if *footprintOut != "" {
			if err := os.WriteFile(*footprintOut, body, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote footprint of AS%d to %s\n", *footprintASN, *footprintOut)
		} else {
			stdout.Write(body)
		}
	}
	return obsFlags.Finish(stdout, stderr)
}
