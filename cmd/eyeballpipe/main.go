// Command eyeballpipe runs the paper's four-step measurement pipeline
// (§2) over a synthetic world and prints the target-dataset profile —
// the reproduction of Table 1 — along with the conditioning statistics.
// With -dump it also exports the per-AS dataset as CSV.
//
// Usage:
//
//	eyeballpipe [-seed N] [-small] [-minpeers N] [-dump dataset.csv]
//	            [-quiet] [-metrics out.json|out.prom|-] [-trace] [-pprof :6060]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"eyeballas"
	"eyeballas/internal/obs"
	"eyeballas/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eyeballpipe: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("eyeballpipe", flag.ContinueOnError)
	fs.SetOutput(stdout)
	seed := fs.Uint64("seed", 42, "world and crawl seed")
	small := fs.Bool("small", false, "use the test-scale world")
	minPeers := fs.Int("minpeers", 0, "override the per-AS peer floor (0 = scale default)")
	workers := fs.Int("workers", 0, "worker goroutines for the pipeline's parallel stages (0 = all CPUs, 1 = serial; output is identical either way)")
	dump := fs.String("dump", "", "write the per-AS target dataset as CSV to this file")
	worldPath := fs.String("world", "", "load the world from a snapshot written by eyeballgen -save instead of generating")
	quiet := fs.Bool("quiet", false, "suppress the one-line funnel summary on stderr")
	obsFlags := obs.BindCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := obsFlags.Registry() // nil unless an observability flag was given
	if reg != nil {
		parallel.SetMetrics(parallel.MetricsFrom(reg))
		defer parallel.SetMetrics(nil)
	}
	if err := obsFlags.Start(stderr); err != nil {
		return err
	}

	var (
		w   *eyeball.World
		err error
	)
	switch {
	case *worldPath != "":
		f, err2 := os.Open(*worldPath)
		if err2 != nil {
			return err2
		}
		w, err = eyeball.LoadWorld(f)
		f.Close()
	case *small:
		w, err = eyeball.GenerateSmallWorld(*seed)
	default:
		w, err = eyeball.GenerateWorld(*seed)
	}
	if err != nil {
		return err
	}

	cfg := eyeball.DefaultPipelineConfig()
	if *minPeers > 0 {
		cfg.MinPeers = *minPeers
	}
	cfg.Workers = *workers
	cfg.Obs = reg
	ds, err := eyeball.BuildTargetDatasetWithConfig(w, eyeball.DefaultCrawlConfig(), cfg, *seed)
	if err != nil {
		return err
	}
	if !*quiet {
		// The funnel is always built; the summary is the paper's 89.1M →
		// 48M conditioning story in one line.
		fmt.Fprintf(stderr, "funnel: %s\n", ds.Funnel.Summary())
	}

	fmt.Fprintf(stdout, "target dataset: %d eligible eyeball ASes, %d usable peers\n",
		len(ds.Order), ds.TotalPeers)
	fmt.Fprintf(stdout, "drops: %d no-city, %d geo-err>%.0fkm, %d unmapped IP, %d duplicate IP\n",
		ds.Drops.NoCityRecord, ds.Drops.HighGeoErr, cfg.MaxGeoErrKm, ds.Drops.UnmappedIP, ds.Drops.DupIP)
	fmt.Fprintf(stdout, "       %d ASes below %d peers, %d ASes with p90 geo err > %.0f km\n\n",
		ds.Drops.SmallAS, cfg.MinPeers, ds.Drops.HighErrAS, cfg.MaxP90GeoErrKm)

	env := &eyeball.Experiments{World: w, Dataset: ds}
	fmt.Fprint(stdout, eyeball.RunTable1(env).Render())

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			return err
		}
		if err := eyeball.WriteDatasetCSV(f, w, ds); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote per-AS dataset to %s\n", *dump)
	}
	return obsFlags.Finish(stdout, stderr)
}
