package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-small", "-seed", "5", "-exp", "table1"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "environment:") || !strings.Contains(s, "Table 1") {
		t.Errorf("output malformed:\n%s", s)
	}
	if strings.Contains(s, "case study") {
		t.Error("selection leaked other experiments")
	}
}

func TestRunAllWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-small", "-seed", "5", "-out", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"table1.txt", "table1.csv", "figure1.txt", "figure2.txt", "figure2.csv",
		"peergeo.txt", "stability.txt", "density.txt", "services.txt", "crawlquality.txt",
		"section5.txt", "dimes.txt", "casestudy.txt",
		"multiscale.txt", "bias.txt", "fusion.txt", "predict.txt",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("artifact %s missing: %v", name, err)
		}
	}
	if !strings.Contains(out.String(), "artifacts written") {
		t.Error("no confirmation line")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-small", "-seed", "5", "-exp", "nonsense"}, &out, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
}
