package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-exp", "table1"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "environment:") || !strings.Contains(s, "Table 1") {
		t.Errorf("output malformed:\n%s", s)
	}
	if strings.Contains(s, "case study") {
		t.Error("selection leaked other experiments")
	}
}

func TestRunAllWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-out", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"table1.txt", "table1.csv", "figure1.txt", "figure2.txt", "figure2.csv",
		"peergeo.txt", "stability.txt", "density.txt", "services.txt", "crawlquality.txt",
		"section5.txt", "dimes.txt", "casestudy.txt",
		"multiscale.txt", "bias.txt", "fusion.txt", "predict.txt",
		"degradation.txt", "degradation.csv",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("artifact %s missing: %v", name, err)
		}
	}
	if !strings.Contains(out.String(), "artifacts written") {
		t.Error("no confirmation line")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-small", "-seed", "5", "-exp", "nonsense"}, &out, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunBadInputs drives the user-error paths: unknown flags and
// experiments, bad fault specs, missing or corrupt world snapshots.
func TestRunBadInputs(t *testing.T) {
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.snap")
	if err := os.WriteFile(corrupt, []byte("not a world snapshot\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"unknown experiment", []string{"-small", "-seed", "5", "-exp", "nonsense"}},
		{"faults spec without rate", []string{"-small", "-faults", "nonsense"}},
		{"faults unknown point", []string{"-small", "-faults", "bogus=0.1"}},
		{"faults rate out of range", []string{"-small", "-faults", "crawl-loss=1.5"}},
		{"missing world file", []string{"-world", filepath.Join(dir, "absent.snap")}},
		{"corrupt world file", []string{"-world", corrupt}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(context.Background(), tc.args, io.Discard, io.Discard); err == nil {
				t.Errorf("run(%q) accepted bad input", tc.args)
			}
		})
	}
}

// TestRunCancelledContext: a pre-cancelled context aborts environment
// generation with ctx.Err().
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, []string{"-small", "-seed", "5", "-exp", "table1"}, io.Discard, io.Discard); !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}
