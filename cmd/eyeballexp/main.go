// Command eyeballexp regenerates every table and figure of the paper's
// evaluation over a synthetic world and prints them; with -out it also
// writes per-experiment text and CSV files.
//
// Usage:
//
//	eyeballexp [-seed N] [-small] [-out dir] [-exp all|table1|figure1|figure2|section5|dimes|casestudy]
//	           [-faults spec] [-fault-seed N]
//	           [-metrics out.json|out.prom|-] [-trace] [-pprof :6060]
//
// SIGINT/SIGTERM cancel the run: every experiment's worker pools stop
// within one work unit, the process exits non-zero, and -metrics still
// writes a partial snapshot.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"eyeballas"
	"eyeballas/internal/faults"
	"eyeballas/internal/obs"
	"eyeballas/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eyeballexp: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("eyeballexp", flag.ContinueOnError)
	fs.SetOutput(stdout)
	seed := fs.Uint64("seed", 42, "world and crawl seed")
	small := fs.Bool("small", false, "use the test-scale world")
	paper := fs.Bool("paper", false, "use the paper-scale world (1233 eyeball ASes; takes minutes)")
	worldPath := fs.String("world", "", "load the world from a snapshot written by eyeballgen -save")
	outDir := fs.String("out", "", "directory to write per-experiment artifacts into")
	expSel := fs.String("exp", "all", "experiment to run: all|table1|figure1|figure2|section5|dimes|casestudy|multiscale|bias|fusion|predict|degradation")
	batch := fs.Int("batch", 0, "peers per streaming ingestion batch for the pipeline build (0 = default; output is identical for every setting)")
	faultFlags := faults.BindCLIFlags(fs)
	obsFlags := obs.BindCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := faultFlags.Plan()
	if err != nil {
		return err
	}
	reg := obsFlags.Registry()
	if reg != nil {
		parallel.SetMetrics(parallel.MetricsFrom(reg))
		defer parallel.SetMetrics(nil)
	}
	if err := obsFlags.Start(stderr); err != nil {
		return err
	}
	defer obsFlags.Finish(stdout, stderr)

	var env *eyeball.Experiments
	switch {
	case *worldPath != "":
		f, err2 := os.Open(*worldPath)
		if err2 != nil {
			return err2
		}
		w, err2 := eyeball.LoadWorld(f)
		f.Close()
		if err2 != nil {
			return err2
		}
		cfg := eyeball.DefaultPipelineConfig()
		cfg.Obs = reg
		cfg.Faults = plan
		cfg.BatchSize = *batch
		env, err = eyeball.NewExperimentsWithWorldCtx(ctx, w, *seed, cfg)
	case *paper:
		env, err = eyeball.NewPaperScaleExperimentsCtx(ctx, *seed, reg, plan, eyeball.WithBatchSize(*batch))
	case *small:
		env, err = eyeball.NewSmallExperimentsCtx(ctx, *seed, reg, plan, eyeball.WithBatchSize(*batch))
	default:
		env, err = eyeball.NewExperimentsCtx(ctx, *seed, reg, plan, eyeball.WithBatchSize(*batch))
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "environment: seed=%d, %d eligible ASes, %d usable peers, %d crawled peers\n\n",
		*seed, len(env.Dataset.Order), env.Dataset.TotalPeers, len(env.Crawl.Peers))

	want := func(name string) bool { return *expSel == "all" || *expSel == name }
	var emitErr error
	emit := func(name, text, csv string) {
		fmt.Fprintln(stdout, text)
		if *outDir == "" {
			return
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			emitErr = err
			return
		}
		if err := os.WriteFile(filepath.Join(*outDir, name+".txt"), []byte(text), 0o644); err != nil {
			emitErr = err
			return
		}
		if csv != "" {
			if err := os.WriteFile(filepath.Join(*outDir, name+".csv"), []byte(csv), 0o644); err != nil {
				emitErr = err
			}
		}
	}

	ran := false
	if want("table1") {
		t := eyeball.RunTable1(env)
		emit("table1", t.Render(), t.CSV())
		ran = true
	}
	if want("figure1") {
		f, err := eyeball.RunFigure1(env, nil)
		if err != nil {
			return err
		}
		emit("figure1", f.Render(), "")
		ran = true
	}
	var f2 *eyeball.Figure2Result
	if want("figure2") || want("section5") {
		f2, err = eyeball.RunFigure2(env, nil)
		if err != nil {
			return err
		}
	}
	if want("figure2") {
		emit("figure2", f2.Render(), f2.CSV())
		ran = true
	}
	if want("section5") {
		emit("section5", eyeball.RunSection5(f2).Render(), "")
		ran = true
	}
	if want("dimes") {
		d, err := eyeball.RunDIMES(env)
		if err != nil {
			return err
		}
		emit("dimes", d.Render(), "")
		ran = true
	}
	if want("casestudy") {
		cs, err := eyeball.RunCaseStudy(env)
		if err != nil {
			return err
		}
		emit("casestudy", cs.Render(), "")
		ran = true
	}
	// Extensions beyond the paper (future-work items implemented).
	if want("multiscale") {
		m, err := eyeball.RunMultiScale(env)
		if err != nil {
			return err
		}
		emit("multiscale", m.Render(), "")
		ran = true
	}
	if want("bias") {
		bi, err := eyeball.RunBias(env)
		if err != nil {
			return err
		}
		emit("bias", bi.Render(), "")
		ran = true
	}
	if want("fusion") {
		fu, err := eyeball.RunFusion(env)
		if err != nil {
			return err
		}
		emit("fusion", fu.Render(), "")
		ran = true
	}
	if want("predict") {
		pr, err := eyeball.RunPredict(env)
		if err != nil {
			return err
		}
		emit("predict", pr.Render(), "")
		ran = true
	}
	if want("peergeo") {
		pg, err := eyeball.RunPeerGeo(env)
		if err != nil {
			return err
		}
		emit("peergeo", pg.Render(), "")
		ran = true
	}
	if want("density") {
		de, err := eyeball.RunDensity(env)
		if err != nil {
			return err
		}
		emit("density", de.Render(), "")
		ran = true
	}
	if want("services") {
		sv, err := eyeball.RunServices(env)
		if err != nil {
			return err
		}
		emit("services", sv.Render(), "")
		ran = true
	}
	if want("crawlquality") {
		cq, err := eyeball.RunCrawlQuality(env, nil)
		if err != nil {
			return err
		}
		emit("crawlquality", cq.Render(), "")
		ran = true
	}
	if want("stability") {
		st, err := eyeball.RunStability(env, 3)
		if err != nil {
			return err
		}
		emit("stability", st.Render(), "")
		ran = true
	}
	if want("degradation") {
		dg, err := eyeball.RunDegradation(env, nil)
		if err != nil {
			return err
		}
		emit("degradation", dg.Render(), dg.CSV())
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want all|table1|figure1|figure2|section5|dimes|casestudy|multiscale|bias|fusion|predict|peergeo|stability|density|services|crawlquality|degradation)", *expSel)
	}
	if emitErr != nil {
		return emitErr
	}
	if *outDir != "" {
		fmt.Fprintf(stdout, "artifacts written to %s\n", *outDir)
	}
	return obsFlags.Finish(stdout, stderr)
}
