#!/bin/sh
# bench_stream.sh — benchmark the streaming ingestion path against the
# frozen batch reference and emit BENCH_pr6.json: ns/op and B/op for
# BuildStream vs the materialized buildBatch over the same crawl, the
# allocation ratio between them (streaming must not allocate more than
# the path it replaces, modulo a 10% noise margin), and the 10×-crawl
# peak-live-heap probe showing memory tracks kept users, not crawled
# peers. Run single-core so the numbers isolate the ingestion path.
#
# Usage: scripts/bench_stream.sh [output.json]
#   BENCHTIME=0.3s scripts/bench_stream.sh     # quicker CI smoke
set -eu
out="${1:-BENCH_pr6.json}"
benchtime="${BENCHTIME:-1s}"
tmp="$(mktemp)"
memlog="$(mktemp)"
trap 'rm -f "$tmp" "$memlog"' EXIT

GOMAXPROCS=1 go test -run '^$' \
  -bench 'BenchmarkBuildStream$|BenchmarkBuildBatch$' \
  -benchtime "$benchtime" ./internal/pipeline/ | tee "$tmp"

# The 10× crawl probe: peak live heap must stay under the fixed
# per-kept-user budget (the test fails the script if it regresses).
go test -run 'TestBuildStreamPeakHeapBounded$' -v -count=1 \
  ./internal/pipeline/ | tee "$memlog"

awk '
  FNR == 1 { file++ }
  file == 1 && /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns[name] = $3; bop[name] = $5; order[n++] = name
  }
  file == 2 && /crawled=/ {
    for (i = 1; i <= NF; i++) {
      if (split($i, kv, "=") == 2) mem[kv[1]] = kv[2]
    }
  }
  END {
    if (n < 2) { print "benchmark output not parsed" > "/dev/stderr"; exit 1 }
    if (!("crawled" in mem)) { print "memory probe log not parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"pr\": 6,\n"
    printf "  \"gomaxprocs\": 1,\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++)
      printf "    \"%s\": { \"ns_per_op\": %s, \"bytes_per_op\": %s }%s\n", \
        order[i], ns[order[i]], bop[order[i]], (i < n - 1 ? "," : "")
    printf "  },\n"
    ratio = bop["BenchmarkBuildStream"] / bop["BenchmarkBuildBatch"]
    printf "  \"stream_over_batch_bytes_per_op\": %.4f,\n", ratio
    printf "  \"peak_heap_10x_crawl\": {\n"
    printf "    \"crawled_peers\": %s,\n", mem["crawled"]
    printf "    \"kept_users\": %s,\n",    mem["kept"]
    printf "    \"base_mib\": %s,\n",      mem["base"]
    printf "    \"peak_mib\": %s,\n",      mem["peak"]
    printf "    \"budget_mib\": %s,\n",    mem["budget"]
    printf "    \"budget\": \"base + 512 B per kept user + 48 MiB\"\n"
    printf "  },\n"
    printf "  \"gate\": { \"stream_bytes_per_op_max_ratio\": 1.10, \"stream_alloc_ok\": %s }\n", (ratio <= 1.10 ? "true" : "false")
    printf "}\n"
  }' "$tmp" "$memlog" >"$out"

echo "wrote $out:"
cat "$out"
if ! grep -q '"stream_alloc_ok": true' "$out"; then
  echo "streaming build allocates more than the batch path it replaces" >&2
  exit 1
fi
