#!/bin/sh
# bench_obs.sh — measure the observability layer's overhead and emit
# BENCH_pr3.json: the full pipeline Build stage with the registry off vs
# on (the ≤3% acceptance budget), the ~6ns compiled origin lookup bare vs
# under the pipeline's shard-aggregated counting pattern, a KDE estimate
# with live spans/counters, and the raw primitive costs (atomic counter,
# histogram observe, span start/end) in both enabled and disabled
# (nil-receiver, branch-only) states. Run single-core so the numbers
# isolate the scalar hot paths.
#
# Usage: scripts/bench_obs.sh [output.json]
#   BENCHTIME=0.2s scripts/bench_obs.sh     # quicker CI smoke
set -eu
out="${1:-BENCH_pr3.json}"
benchtime="${BENCHTIME:-1s}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

GOMAXPROCS=1 go test -run '^$' \
  -bench 'BuildObsOff|BuildObsOn' \
  -benchtime "$benchtime" ./internal/pipeline/ | tee "$tmp"
GOMAXPROCS=1 go test -run '^$' \
  -bench 'OriginOfCompiled|OriginOfInstrumented' \
  -benchtime "$benchtime" ./internal/bgp/ | tee -a "$tmp"
GOMAXPROCS=1 go test -run '^$' \
  -bench 'Estimate$/n10000$' \
  -benchtime "$benchtime" ./internal/kde/ | tee -a "$tmp"
GOMAXPROCS=1 go test -run '^$' \
  -bench 'EstimateObs$' \
  -benchtime "$benchtime" ./internal/kde/ | tee -a "$tmp"
GOMAXPROCS=1 go test -run '^$' \
  -bench 'CounterInc|HistogramObserve|SpanStartEnd' \
  -benchtime "$benchtime" ./internal/obs/ | tee -a "$tmp"

awk '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    vals[name] = $3; order[n++] = name
  }
  END {
    if (n == 0) { print "no benchmark output parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"pr\": 3,\n"
    printf "  \"unit\": \"ns/op\",\n"
    printf "  \"gomaxprocs\": 1,\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++)
      printf "    \"%s\": %s%s\n", order[i], vals[order[i]], (i < n - 1 ? "," : "")
    printf "  },\n"
    build   = vals["BenchmarkBuildObsOn"]          / vals["BenchmarkBuildObsOff"]
    origin  = vals["BenchmarkOriginOfInstrumented"] / vals["BenchmarkOriginOfCompiled"]
    kde     = vals["BenchmarkEstimateObs"]          / vals["BenchmarkEstimate/n10000"]
    printf "  \"overhead_enabled_over_disabled\": {\n"
    printf "    \"pipeline_build\": %.4f,\n", build
    printf "    \"origin_lookup\": %.4f,\n",  origin
    printf "    \"kde_estimate\": %.4f\n",    kde
    printf "  },\n"
    printf "  \"budget\": { \"pipeline_build_max\": 1.03, \"pipeline_build_ok\": %s }\n", (build <= 1.03 ? "true" : "false")
    printf "}\n"
  }' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
if ! grep -q '"pipeline_build_ok": true' "$out"; then
  echo "observability overhead exceeds the 3% budget" >&2
  exit 1
fi
