#!/bin/sh
# bench_client.sh — benchmark the resilient client and the chaos-off
# serve path, and emit BENCH_pr9.json. Two gates:
#
#   1. Client overhead: BenchmarkClientLookup (full resilience stack —
#      retry budget, breaker, backoff plumbing) vs BenchmarkDirectLookup
#      (bare net/http, identical request, same loopback server). The
#      happy path must stay within 1.05x of direct — the resilience
#      machinery is bookkeeping around a round trip, not a tax on it.
#
#   2. Chaos-off middleware: with no chaos armed the serve path takes a
#      single nil-pointer branch, so BenchmarkLookup's allocations must
#      hold at the PR8 baseline (44 allocs/op) — zero extra allocs from
#      the injection middleware.
#
# Usage: scripts/bench_client.sh [output.json]
#   BENCHTIME=0.2s scripts/bench_client.sh     # quicker CI smoke
set -eu
out="${1:-BENCH_pr9.json}"
benchtime="${BENCHTIME:-1s}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
  -bench 'BenchmarkClientLookup$|BenchmarkDirectLookup$' \
  -benchmem -benchtime "$benchtime" ./internal/client/ | tee "$tmp"

# GOMAXPROCS=1 matches the conditions the PR8 baseline was recorded
# under, so the alloc count is comparable bench-to-bench.
GOMAXPROCS=1 go test -run '^$' \
  -bench 'BenchmarkLookup$' \
  -benchmem -benchtime "$benchtime" ./internal/serve/ | tee -a "$tmp"

# PR8 recorded BenchmarkLookup at 44 allocs/op (full HTTP dispatch
# through the instrumented mux, httptest recorder included). The chaos
# middleware must not move that number when no plan is armed.
alloc_baseline=44
ratio_max=1.05

awk -v alloc_baseline="$alloc_baseline" -v ratio_max="$ratio_max" '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns[name] = $3; bop[name] = $5; aop[name] = $7; order[n++] = name
  }
  END {
    if (n < 3) { print "benchmark output not parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"pr\": 9,\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++)
      printf "    \"%s\": { \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s }%s\n", \
        order[i], ns[order[i]], bop[order[i]], aop[order[i]], (i < n - 1 ? "," : "")
    printf "  },\n"
    ratio = ns["BenchmarkClientLookup"] / ns["BenchmarkDirectLookup"]
    lookup_allocs = aop["BenchmarkLookup"] + 0
    printf "  \"gate\": {\n"
    printf "    \"client_vs_direct_ratio\": %.4f,\n", ratio
    printf "    \"client_vs_direct_ratio_max\": %.2f,\n", ratio_max
    printf "    \"client_overhead_ok\": %s,\n", (ratio <= ratio_max ? "true" : "false")
    printf "    \"chaos_off_lookup_allocs\": %d,\n", lookup_allocs
    printf "    \"chaos_off_lookup_allocs_max\": %d,\n", alloc_baseline
    printf "    \"chaos_off_alloc_ok\": %s\n", (lookup_allocs <= alloc_baseline ? "true" : "false")
    printf "  }\n"
    printf "}\n"
  }' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
if ! grep -q '"client_overhead_ok": true' "$out"; then
  echo "resilient client exceeds 1.05x the direct net/http round trip" >&2
  exit 1
fi
if ! grep -q '"chaos_off_alloc_ok": true' "$out"; then
  echo "chaos-off serve path allocates above the PR8 baseline" >&2
  exit 1
fi
