#!/bin/sh
# bench_trace.sh — measure what request tracing costs the serve hot
# paths and emit BENCH_pr8.json. The *Traced benchmarks run the exact
# cached-footprint and lookup paths of bench_serve.sh with the full
# tracing stack enabled (tracer, flight recorder, slow capture,
# histogram exemplars); the gate holds them within 3% of the PR 7
# recorded baseline (BENCH_pr7.json), per-process wall-clock noise on
# shared runners being what it is, and additionally pins the
# deterministic side of the cost: tracing may add at most one heap
# allocation and 1 KiB per request (the measured cost is 0 extra
# allocations and one 576-byte slab share per request — see DESIGN.md
# §11). ns/op is taken as the min over COUNT runs, the standard
# noise-floor estimator.
#
# Usage: scripts/bench_trace.sh [output.json]
#   BENCHTIME=0.3s COUNT=2 scripts/bench_trace.sh   # quicker CI smoke
set -eu
out="${1:-BENCH_pr8.json}"
benchtime="${BENCHTIME:-0.5s}"
count="${COUNT:-4}"
baseline="$(dirname "$0")/../BENCH_pr7.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# PR 7 recorded baselines (ns/op) — the anchor the ISSUE's ≤3% overhead
# gate is phrased against.
base_fp=$(sed -n 's/.*"BenchmarkFootprintCached": { "ns_per_op": \([0-9]*\).*/\1/p' "$baseline")
base_lk=$(sed -n 's/.*"BenchmarkLookup": { "ns_per_op": \([0-9]*\).*/\1/p' "$baseline")
[ -n "$base_fp" ] && [ -n "$base_lk" ] || {
  echo "cannot parse PR 7 baselines from $baseline" >&2; exit 1
}

GOMAXPROCS=1 go test -run '^$' \
  -bench 'BenchmarkFootprintCached$|BenchmarkFootprintCachedTraced$|BenchmarkLookup$|BenchmarkLookupTraced$' \
  -benchtime "$benchtime" -count "$count" ./internal/serve/ | tee "$tmp"

awk -v base_fp="$base_fp" -v base_lk="$base_lk" '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!(name in ns) || $3 + 0 < ns[name] + 0) ns[name] = $3
    bop[name] = $5; aop[name] = $7
    if (!(name in seen)) { seen[name] = 1; order[n++] = name }
  }
  END {
    if (n < 4) { print "benchmark output not parsed" > "/dev/stderr"; exit 1 }
    fp  = ns["BenchmarkFootprintCachedTraced"] + 0
    lk  = ns["BenchmarkLookupTraced"] + 0
    fpb = bop["BenchmarkFootprintCachedTraced"] - bop["BenchmarkFootprintCached"]
    lkb = bop["BenchmarkLookupTraced"] - bop["BenchmarkLookup"]
    fpa = aop["BenchmarkFootprintCachedTraced"] - aop["BenchmarkFootprintCached"]
    lka = aop["BenchmarkLookupTraced"] - aop["BenchmarkLookup"]
    ns_ok    = (fp <= base_fp * 1.03 && lk <= base_lk * 1.03)
    alloc_ok = (fpa <= 1 && lka <= 1 && fpb <= 1024 && lkb <= 1024)
    printf "{\n"
    printf "  \"pr\": 8,\n"
    printf "  \"gomaxprocs\": 1,\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++)
      printf "    \"%s\": { \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s }%s\n", \
        order[i], ns[order[i]], bop[order[i]], aop[order[i]], (i < n - 1 ? "," : "")
    printf "  },\n"
    printf "  \"gate\": {\n"
    printf "    \"footprint_traced_ns_max\": %d,\n", base_fp * 1.03
    printf "    \"lookup_traced_ns_max\": %d,\n", base_lk * 1.03
    printf "    \"traced_extra_allocs_max\": 1,\n"
    printf "    \"traced_extra_bytes_max\": 1024,\n"
    printf "    \"footprint_extra_bytes\": %d,\n", fpb
    printf "    \"lookup_extra_bytes\": %d,\n", lkb
    printf "    \"footprint_extra_allocs\": %d,\n", fpa
    printf "    \"lookup_extra_allocs\": %d,\n", lka
    printf "    \"traced_ns_ok\": %s,\n", (ns_ok ? "true" : "false")
    printf "    \"traced_alloc_ok\": %s\n", (alloc_ok ? "true" : "false")
    printf "  }\n"
    printf "}\n"
  }' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
status=0
if ! grep -q '"traced_ns_ok": true' "$out"; then
  echo "traced hot paths exceed 1.03x the PR 7 recorded baseline" >&2
  status=1
fi
if ! grep -q '"traced_alloc_ok": true' "$out"; then
  echo "tracing allocates past its per-request budget (1 alloc / 1 KiB)" >&2
  status=1
fi
exit $status
