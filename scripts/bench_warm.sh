#!/bin/sh
# bench_warm.sh — benchmark the cold-vs-warmed footprint paths and the
# coalescing machinery, and emit BENCH_pr10.json. Two gates:
#
#   1. Warmed speedup: the cached path (what a prewarmed server serves)
#      must be at least 5x faster than the cold path (full KDE render
#      per request) — the whole point of the -warm pass. The real ratio
#      is orders of magnitude; 5x is the floor that still proves the
#      cache is doing the work.
#   2. Coalesced-path allocations: a flight waiter's join + wait must
#      cost at most 1 alloc/op on top of the render it skips (measured:
#      0) — coalescing exists to shed load, so its own overhead must
#      stay negligible.
#
# Run single-core so the numbers isolate the paths being compared.
#
# Usage: scripts/bench_warm.sh [output.json]
#   BENCHTIME=0.3s scripts/bench_warm.sh     # quicker CI smoke
set -eu
out="${1:-BENCH_pr10.json}"
benchtime="${BENCHTIME:-1s}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

GOMAXPROCS=1 go test -run '^$' \
  -bench 'BenchmarkFootprintCold$|BenchmarkFootprintCached$|BenchmarkFlightWaiter$' \
  -benchtime "$benchtime" -benchmem ./internal/serve/ | tee "$tmp"

awk '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns[name] = $3; bop[name] = $5; aop[name] = $7; order[n++] = name
  }
  END {
    if (n < 3) { print "benchmark output not parsed" > "/dev/stderr"; exit 1 }
    cold = ns["BenchmarkFootprintCold"] + 0
    warmed = ns["BenchmarkFootprintCached"] + 0
    waiter = aop["BenchmarkFlightWaiter"] + 0
    speedup = (warmed > 0 ? cold / warmed : 0)
    printf "{\n"
    printf "  \"pr\": 10,\n"
    printf "  \"gomaxprocs\": 1,\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++)
      printf "    \"%s\": { \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s }%s\n", \
        order[i], ns[order[i]], bop[order[i]], aop[order[i]], (i < n - 1 ? "," : "")
    printf "  },\n"
    printf "  \"gate\": {\n"
    printf "    \"warmed_speedup_min\": 5.0,\n"
    printf "    \"warmed_speedup\": %.1f,\n", speedup
    printf "    \"warmed_speedup_ok\": %s,\n", (speedup >= 5 ? "true" : "false")
    printf "    \"flight_waiter_allocs_max\": 1,\n"
    printf "    \"flight_waiter_allocs\": %d,\n", waiter
    printf "    \"flight_waiter_allocs_ok\": %s\n", (waiter <= 1 ? "true" : "false")
    printf "  }\n"
    printf "}\n"
  }' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
if ! grep -q '"warmed_speedup_ok": true' "$out"; then
  echo "warmed footprint path is not >=5x faster than the cold render path" >&2
  exit 1
fi
if ! grep -q '"flight_waiter_allocs_ok": true' "$out"; then
  echo "coalesced waiter path allocates past its 1 alloc/op budget" >&2
  exit 1
fi
