#!/bin/sh
# bench_serve.sh — benchmark the eyeballserve hot paths and emit
# BENCH_pr7.json: ns/op and B/op for the cached-footprint, origin-
# lookup, and AS-record handlers (full HTTP dispatch through the
# instrumented mux). The gate holds the cached-footprint path's
# allocations flat: serving a cached render is a map hit plus a body
# write and must stay under a fixed per-request byte budget — a
# regression here means the steady-state serving cost started scaling
# with something it shouldn't. Run single-core so the numbers isolate
# the handler path.
#
# Usage: scripts/bench_serve.sh [output.json]
#   BENCHTIME=0.3s scripts/bench_serve.sh     # quicker CI smoke
set -eu
out="${1:-BENCH_pr7.json}"
benchtime="${BENCHTIME:-1s}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

GOMAXPROCS=1 go test -run '^$' \
  -bench 'BenchmarkFootprintCached$|BenchmarkLookup$|BenchmarkASRecord$' \
  -benchtime "$benchtime" ./internal/serve/ | tee "$tmp"

# Cached-footprint byte budget per request: the response body itself is
# a few KiB and httptest's recorder re-buffers it, so 64 KiB is loose
# enough for noise while still catching an accidental re-render (the
# KDE path allocates MiBs).
budget=65536

awk -v budget="$budget" '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns[name] = $3; bop[name] = $5; order[n++] = name
  }
  END {
    if (n < 3) { print "benchmark output not parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"pr\": 7,\n"
    printf "  \"gomaxprocs\": 1,\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++)
      printf "    \"%s\": { \"ns_per_op\": %s, \"bytes_per_op\": %s }%s\n", \
        order[i], ns[order[i]], bop[order[i]], (i < n - 1 ? "," : "")
    printf "  },\n"
    cached = bop["BenchmarkFootprintCached"]
    printf "  \"gate\": { \"footprint_cached_bytes_per_op_max\": %d, \"footprint_cached_alloc_ok\": %s }\n", \
      budget, (cached + 0 <= budget ? "true" : "false")
    printf "}\n"
  }' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
if ! grep -q '"footprint_cached_alloc_ok": true' "$out"; then
  echo "cached footprint serving allocates past its per-request budget" >&2
  exit 1
fi
