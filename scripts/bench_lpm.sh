#!/bin/sh
# bench_lpm.sh — measure the compiled LPM engine against the mutable
# radix trie and emit BENCH_pr2.json: lookup ns/op before (trie) and
# after (compiled) on dense/sparse RIB-scale address mixes, plus table
# build and compile times. Run single-core so the numbers isolate the
# scalar hot path (the parallel pool is PR 1's story).
#
# Usage: scripts/bench_lpm.sh [output.json]
#   BENCHTIME=0.2s scripts/bench_lpm.sh     # quicker CI smoke
set -eu
out="${1:-BENCH_pr2.json}"
benchtime="${BENCHTIME:-1s}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

GOMAXPROCS=1 go test -run '^$' \
  -bench 'TableLookupDense|TableLookupSparse|CompiledLookupDense|CompiledLookupSparse|CompileRIBScale|TableBuildRIBScale' \
  -benchtime "$benchtime" ./internal/ipnet/ | tee "$tmp"
GOMAXPROCS=1 go test -run '^$' \
  -bench 'OriginOfCompiled|OriginOfTrie' \
  -benchtime "$benchtime" ./internal/bgp/ | tee -a "$tmp"

awk '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    vals[name] = $3; order[n++] = name
  }
  END {
    if (n == 0) { print "no benchmark output parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"pr\": 2,\n"
    printf "  \"unit\": \"ns/op\",\n"
    printf "  \"gomaxprocs\": 1,\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++)
      printf "    \"%s\": %s%s\n", order[i], vals[order[i]], (i < n - 1 ? "," : "")
    printf "  },\n"
    printf "  \"speedup_compiled_over_trie\": {\n"
    printf "    \"lookup_dense\": %.2f,\n",  vals["BenchmarkTableLookupDense"]  / vals["BenchmarkCompiledLookupDense"]
    printf "    \"lookup_sparse\": %.2f,\n", vals["BenchmarkTableLookupSparse"] / vals["BenchmarkCompiledLookupSparse"]
    printf "    \"origin_of\": %.2f\n",      vals["BenchmarkOriginOfTrie"]      / vals["BenchmarkOriginOfCompiled"]
    printf "  }\n"
    printf "}\n"
  }' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
