package eyeball

import (
	"context"

	"eyeballas/internal/core"
	"eyeballas/internal/experiments"
)

// Multi-scale refinement types (see core.MultiScaleFootprint).
type (
	// MultiScaleOptions configure the multi-bandwidth refinement.
	MultiScaleOptions = core.MultiScaleOptions
	// MultiScalePoP is a PoP confirmed across bandwidths.
	MultiScalePoP = core.MultiScalePoP
)

// Experiment result types, re-exported so the full evaluation is
// reachable through the public API.
type (
	// Table1Result is the target-dataset profile (paper Table 1).
	Table1Result = experiments.Table1
	// Figure1Result is the multi-bandwidth density study (paper Fig. 1).
	Figure1Result = experiments.Figure1
	// Figure2Result is the published-PoP validation (paper Fig. 2a/2b).
	Figure2Result = experiments.Figure2
	// Section5Result collects the §5 scalar statistics.
	Section5Result = experiments.Section5
	// DIMESResult is the §5 traceroute-baseline comparison.
	DIMESResult = experiments.DIMES
	// CaseStudyResult is the §6 connectivity case study.
	CaseStudyResult = experiments.CaseStudy

	// MultiScaleResult evaluates the §5 future-work multi-bandwidth PoP
	// refinement.
	MultiScaleResult = experiments.MultiScale
	// BiasResult is the §4.3 sampling-bias study.
	BiasResult = experiments.Bias
	// FusionResult is the §7 edge+traceroute fusion study.
	FusionResult = experiments.Fusion
	// PredictResult scores a geography-based connectivity predictor
	// (the §1 open question).
	PredictResult = experiments.Predict
	// PeerGeoResult quantifies the §1 claim that peering follows
	// geographic overlap.
	PeerGeoResult = experiments.PeerGeo
	// StabilityResult scores footprint stability across independent
	// monthly crawls.
	StabilityResult = experiments.Stability
	// DensityResult correlates discovered PoP densities with ground-truth
	// presence (the §4.2 claim).
	DensityResult = experiments.Density
	// ServicesResult scores the residential-vs-content footprint
	// classifier (the §3/§7 claim).
	ServicesResult = experiments.Services
	// CrawlQualityResult sweeps crawl effort end-to-end.
	CrawlQualityResult = experiments.CrawlQuality
	// DegradationResult sweeps injected-fault rates and scores how
	// gracefully the discovered footprints degrade.
	DegradationResult = experiments.Degradation
)

// NewExperiments generates the full-scale experimental environment
// (world, crawls, geolocation, BGP, reference lists, IXP data,
// traceroutes) from one seed.
func NewExperiments(seed uint64) (*Experiments, error) {
	return experiments.NewEnv(seed, experiments.ScaleDefault)
}

// NewSmallExperiments is NewExperiments at test scale.
func NewSmallExperiments(seed uint64) (*Experiments, error) {
	return experiments.NewEnv(seed, experiments.ScaleSmall)
}

// NewExperimentsObs is NewExperiments with an observability registry
// threaded through every stage (crawl metrics, pipeline funnel, BGP and
// KDE instrumentation, per-dataset build spans). A nil registry is the
// disabled state; the environment is identical either way.
func NewExperimentsObs(seed uint64, reg *Registry) (*Experiments, error) {
	return experiments.NewEnvObs(seed, experiments.ScaleDefault, reg)
}

// NewSmallExperimentsObs is NewExperimentsObs at test scale.
func NewSmallExperimentsObs(seed uint64, reg *Registry) (*Experiments, error) {
	return experiments.NewEnvObs(seed, experiments.ScaleSmall, reg)
}

// NewPaperScaleExperiments is NewExperiments at the paper's population
// (1233 eyeball ASes, the literal 1000-peer floor); runs take minutes.
func NewPaperScaleExperiments(seed uint64) (*Experiments, error) {
	return experiments.NewPaperScaleEnv(seed)
}

// NewPaperScaleExperimentsObs is NewPaperScaleExperiments with an
// observability registry.
func NewPaperScaleExperimentsObs(seed uint64, reg *Registry) (*Experiments, error) {
	return experiments.NewPaperScaleEnvObs(seed, reg)
}

// NewExperimentsWithWorld builds the environment over an existing world
// (e.g. one loaded from a snapshot with LoadWorld).
func NewExperimentsWithWorld(w *World, seed uint64, cfg PipelineConfig) (*Experiments, error) {
	return experiments.NewEnvWithWorld(w, seed, cfg)
}

// NewExperimentsCtx is NewExperimentsObs with a cancellation context —
// every worker pool, crawl, and pipeline rebuild the experiments launch
// observes it (nil means context.Background()) — and an optional
// fault-injection plan threaded into the pipeline build. A nil plan is
// the unfaulted, bit-identical default.
func NewExperimentsCtx(ctx context.Context, seed uint64, reg *Registry, plan *FaultPlan, opts ...ExperimentsOption) (*Experiments, error) {
	return experiments.NewEnvCtx(ctx, seed, experiments.ScaleDefault, reg, plan, opts...)
}

// NewSmallExperimentsCtx is NewExperimentsCtx at test scale.
func NewSmallExperimentsCtx(ctx context.Context, seed uint64, reg *Registry, plan *FaultPlan, opts ...ExperimentsOption) (*Experiments, error) {
	return experiments.NewEnvCtx(ctx, seed, experiments.ScaleSmall, reg, plan, opts...)
}

// NewPaperScaleExperimentsCtx is NewExperimentsCtx at the paper's
// population.
func NewPaperScaleExperimentsCtx(ctx context.Context, seed uint64, reg *Registry, plan *FaultPlan, opts ...ExperimentsOption) (*Experiments, error) {
	return experiments.NewPaperScaleEnvCtx(ctx, seed, reg, plan, opts...)
}

// ExperimentsOption adjusts the pipeline configuration an experiments
// environment is built with.
type ExperimentsOption = experiments.EnvOption

// WithBatchSize sets the streaming ingestion batch size for the
// environment's pipeline build (bit-identical output for every setting;
// the knob bounds transient memory only).
func WithBatchSize(n int) ExperimentsOption { return experiments.WithBatchSize(n) }

// WithMaxSamplesPerAS caps per-AS sample retention in the environment's
// pipeline build (deterministic reservoir + quantile sketch; 0 keeps
// every sample).
func WithMaxSamplesPerAS(n int) ExperimentsOption { return experiments.WithMaxSamplesPerAS(n) }

// NewExperimentsWithWorldCtx is NewExperimentsWithWorld with a
// cancellation context stored on the environment. Fault injection is
// configured through cfg.Faults.
func NewExperimentsWithWorldCtx(ctx context.Context, w *World, seed uint64, cfg PipelineConfig) (*Experiments, error) {
	return experiments.NewEnvWithWorldCtx(ctx, w, seed, cfg)
}

// RunTable1 profiles the target dataset (paper Table 1).
func RunTable1(env *Experiments) *Table1Result { return experiments.RunTable1(env) }

// RunFigure1 estimates a national eyeball AS's density surface at the
// paper's three bandwidths (20/40/60 km); pass nil for those defaults.
func RunFigure1(env *Experiments, bandwidths []float64) (*Figure1Result, error) {
	return experiments.RunFigure1(env, bandwidths)
}

// RunFigure2 validates discovered PoPs against published PoP lists at the
// paper's three bandwidths (10/40/80 km); pass nil for those defaults.
func RunFigure2(env *Experiments, bandwidths []float64) (*Figure2Result, error) {
	return experiments.RunFigure2(env, bandwidths)
}

// RunSection5 derives the §5 scalar statistics from a Figure 2 run.
func RunSection5(f2 *Figure2Result) *Section5Result { return experiments.RunSection5(f2) }

// RunDIMES compares KDE-discovered PoPs against the traceroute baseline.
func RunDIMES(env *Experiments) (*DIMESResult, error) { return experiments.RunDIMES(env) }

// RunCaseStudy executes the §6 connectivity case study.
func RunCaseStudy(env *Experiments) (*CaseStudyResult, error) {
	return experiments.RunCaseStudy(env)
}

// RunMultiScale evaluates multi-bandwidth PoP refinement (§5 future
// work) against the fixed-bandwidth analyses.
func RunMultiScale(env *Experiments) (*MultiScaleResult, error) {
	return experiments.RunMultiScale(env)
}

// RunBias runs the §4.3 sampling-bias study (mild and significant bias).
func RunBias(env *Experiments) (*BiasResult, error) { return experiments.RunBias(env) }

// RunFusion evaluates the §7 combination of the edge-based view with
// traceroute observations.
func RunFusion(env *Experiments) (*FusionResult, error) { return experiments.RunFusion(env) }

// RunPredict scores the geography-based connectivity predictor over the
// whole target dataset.
func RunPredict(env *Experiments) (*PredictResult, error) { return experiments.RunPredict(env) }

// RunPeerGeo compares measured-footprint overlap of peering AS pairs
// against random same-region control pairs (the §1 motivation).
func RunPeerGeo(env *Experiments) (*PeerGeoResult, error) { return experiments.RunPeerGeo(env) }

// RunStability crawls the world `months` times with independent seeds and
// scores PoP-footprint stability across the crawls.
func RunStability(env *Experiments, months int) (*StabilityResult, error) {
	return experiments.RunStability(env, months)
}

// RunDensity correlates per-PoP density values against ground-truth
// customer shares across multi-PoP ASes.
func RunDensity(env *Experiments) (*DensityResult, error) { return experiments.RunDensity(env) }

// RunServices scores the footprint-based residential-vs-content
// classifier against ground truth.
func RunServices(env *Experiments) (*ServicesResult, error) { return experiments.RunServices(env) }

// RunDegradation rebuilds the pipeline under injected faults at each
// rate (nil selects the default sweep) and scores footprint similarity
// against the environment's clean dataset.
func RunDegradation(env *Experiments, rates []float64) (*DegradationResult, error) {
	return experiments.RunDegradation(env, rates)
}

// RunCrawlQuality reruns the pipeline at reduced crawl scales and tracks
// dataset size and footprint richness; pass nil for the default sweep.
func RunCrawlQuality(env *Experiments, scales []float64) (*CrawlQualityResult, error) {
	return experiments.RunCrawlQuality(env, scales)
}

// MultiScaleFootprint runs the multi-bandwidth refinement for one AS's
// samples (see core.MultiScaleOptions for knobs).
func MultiScaleFootprint(w *World, samples []Sample, opts MultiScaleOptions) ([]MultiScalePoP, error) {
	return core.MultiScaleFootprint(w.Gazetteer, samples, opts)
}

// MultiScaleFootprintCtx is MultiScaleFootprint with a cancellation
// context threaded through the per-bandwidth fan-out and each KDE run.
func MultiScaleFootprintCtx(ctx context.Context, w *World, samples []Sample, opts MultiScaleOptions) ([]MultiScalePoP, error) {
	return core.MultiScaleFootprintCtx(ctx, w.Gazetteer, samples, opts)
}
