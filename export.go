package eyeball

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"eyeballas/internal/p2p"
)

// Export helpers: machine-readable views of the target dataset and the
// ground-truth world, for downstream analysis outside Go.

// WriteDatasetCSV writes one row per eligible eyeball AS:
//
//	asn,name,kind,level,place,region,users,samples,kad,gnutella,bittorrent,p90_geoerr_km
//
// Ground-truth fields (name, kind) come from the world; everything else
// is measurement output. The three peer-count-ish columns measure
// different things and are deliberately separate:
//
//   - users is the number of distinct usable users observed in the AS
//     (ASRecord.Users) — the funnel-conserved quantity that sums to the
//     dataset's TotalPeers.
//   - samples is the number of retained samples (len(Samples)); it
//     equals users unless MaxSamplesPerAS capped the reservoir.
//   - kad/gnutella/bittorrent count per-crawler observations; a user
//     seen by two crawlers appears in both columns, so their sum can
//     exceed users.
//
// (Earlier revisions wrote a single "peers" column holding the sample
// count, which silently disagreed with both Users and the app columns.)
func WriteDatasetCSV(w io.Writer, world *World, ds *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"asn", "name", "kind", "level", "place", "region",
		"users", "samples", "kad", "gnutella", "bittorrent", "p90_geoerr_km",
	}); err != nil {
		return err
	}
	for _, rec := range ds.Records() {
		name, kind := "", ""
		if a := world.AS(rec.ASN); a != nil {
			name, kind = a.Name, a.Kind.String()
		}
		row := []string{
			strconv.Itoa(int(rec.ASN)),
			name,
			kind,
			rec.Class.Level.String(),
			rec.Class.Place,
			string(rec.Region),
			strconv.Itoa(rec.Users),
			strconv.Itoa(len(rec.Samples)),
			strconv.Itoa(rec.PeersByApp[p2p.Kad]),
			strconv.Itoa(rec.PeersByApp[p2p.Gnutella]),
			strconv.Itoa(rec.PeersByApp[p2p.BitTorrent]),
			fmt.Sprintf("%.2f", rec.P90GeoErrKm),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSamplesCSV writes one AS's usable samples:
//
//	lat,lon,city,state,country,region,geoerr_km
func WriteSamplesCSV(w io.Writer, rec *ASRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"lat", "lon", "city", "state", "country", "region", "geoerr_km"}); err != nil {
		return err
	}
	for _, s := range rec.Samples {
		row := []string{
			fmt.Sprintf("%.5f", s.Loc.Lat),
			fmt.Sprintf("%.5f", s.Loc.Lon),
			s.City, s.State, s.Country, string(s.Region),
			fmt.Sprintf("%.2f", s.GeoErrKm),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// worldJSON is the serialized ground-truth shape.
type worldJSON struct {
	Seed  uint64       `json:"seed"`
	ASes  []asJSON     `json:"ases"`
	IXPs  []ixpJSON    `json:"ixps"`
	Peers []peeringRow `json:"peerings"`
}

type asJSON struct {
	ASN       int       `json:"asn"`
	Name      string    `json:"name"`
	Kind      string    `json:"kind"`
	Level     string    `json:"level"`
	Region    string    `json:"region"`
	Country   string    `json:"country,omitempty"`
	Customers int       `json:"customers,omitempty"`
	Publishes bool      `json:"publishes_pops,omitempty"`
	Providers []int     `json:"providers,omitempty"`
	Prefixes  []string  `json:"prefixes"`
	PoPs      []popJSON `json:"pops"`
}

type popJSON struct {
	City        string  `json:"city"`
	Country     string  `json:"country"`
	Lat         float64 `json:"lat"`
	Lon         float64 `json:"lon"`
	Share       float64 `json:"share"`
	ServesUsers bool    `json:"serves_users"`
}

type ixpJSON struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	City    string `json:"city"`
	Country string `json:"country"`
	Members []int  `json:"members"`
}

type peeringRow struct {
	A   int `json:"a"`
	B   int `json:"b"`
	IXP int `json:"ixp,omitempty"`
}

// WriteWorldJSON serializes the full ground truth (ASes with PoPs and
// prefixes, provider links, IXPs, peerings) as JSON, for analysis outside
// this library. The output is deterministic for a given world.
func WriteWorldJSON(w io.Writer, world *World) error {
	out := worldJSON{Seed: world.Seed}
	for _, a := range world.ASes() {
		aj := asJSON{
			ASN:       int(a.ASN),
			Name:      a.Name,
			Kind:      a.Kind.String(),
			Level:     a.Level.String(),
			Region:    string(a.Region),
			Country:   a.Country,
			Customers: a.Customers,
			Publishes: a.PublishesPoPs,
		}
		for _, p := range world.Providers(a.ASN) {
			aj.Providers = append(aj.Providers, int(p))
		}
		for _, p := range a.Prefixes {
			aj.Prefixes = append(aj.Prefixes, p.String())
		}
		for _, p := range a.PoPs {
			aj.PoPs = append(aj.PoPs, popJSON{
				City:        p.City.Name,
				Country:     p.City.Country,
				Lat:         p.City.Loc.Lat,
				Lon:         p.City.Loc.Lon,
				Share:       p.Share,
				ServesUsers: p.ServesUsers,
			})
		}
		out.ASes = append(out.ASes, aj)
	}
	for _, ix := range world.IXPs() {
		ij := ixpJSON{
			ID:      int(ix.ID),
			Name:    ix.Name,
			City:    ix.City.Name,
			Country: ix.City.Country,
		}
		for _, m := range ix.Members {
			ij.Members = append(ij.Members, int(m))
		}
		out.IXPs = append(out.IXPs, ij)
	}
	for _, p := range world.Peerings() {
		out.Peers = append(out.Peers, peeringRow{A: int(p.A), B: int(p.B), IXP: int(p.IXP)})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
