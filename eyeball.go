// Package eyeball is the public API of the reproduction of "Eyeball
// ASes: From Geography to Connectivity" (Rasti, Magharei, Rejaie,
// Willinger; IMC 2010).
//
// The library determines the geographic footprint of eyeball ASes —
// Autonomous Systems that serve end users — from the geo-locations of
// those users, estimates their likely PoP locations from the peaks of a
// kernel density surface, and studies what geography does (and does not)
// predict about their connectivity.
//
// Because the paper's datasets (89M crawled P2P peers, commercial
// geolocation databases, RouteViews tables, DIMES traceroutes) are not
// redistributable, the library ships a complete synthetic-Internet
// substrate: a ground-truth world generator plus imperfect measurement
// simulators for each input. Every experiment therefore has exact ground
// truth to validate against. See DESIGN.md for the substitution mapping.
//
// Typical use:
//
//	w, err := eyeball.GenerateWorld(42)           // synthetic Internet
//	ds, err := eyeball.BuildTargetDataset(w, 42)  // crawl + geolocate + group + filter
//	rec := ds.Records()[0]                        // one eyeball AS
//	fp, err := eyeball.EstimateFootprint(w, rec.Samples, eyeball.FootprintOptions{})
//	fmt.Println(fp.CityList())                    // "[Milan (.130), Rome (.122), …]"
package eyeball

import (
	"context"
	"io"

	"eyeballas/internal/astopo"
	"eyeballas/internal/bgp"
	"eyeballas/internal/core"
	"eyeballas/internal/experiments"
	"eyeballas/internal/faults"
	"eyeballas/internal/gazetteer"
	"eyeballas/internal/geo"
	"eyeballas/internal/obs"
	"eyeballas/internal/p2p"
	"eyeballas/internal/pipeline"
	"eyeballas/internal/snapshot"
)

// Core domain types, re-exported from the implementation packages so the
// whole workflow is reachable through this one import.
type (
	// World is a generated ground-truth Internet: ASes with PoPs,
	// relationships, IXPs, and the shared geography.
	World = astopo.World
	// ASN is an Autonomous System number.
	ASN = astopo.ASN
	// AS is one Autonomous System with its ground truth.
	AS = astopo.AS
	// Level is an AS's geographic scope (city/state/country/continent/
	// global).
	Level = astopo.Level
	// WorldConfig controls world generation.
	WorldConfig = astopo.Config

	// Sample is one usable peer observation (geolocated IP).
	Sample = core.Sample
	// Footprint is an estimated geo- and PoP-level footprint.
	Footprint = core.Footprint
	// PoP is one inferred Point of Presence.
	PoP = core.PoP
	// FootprintOptions tune the KDE and PoP extraction; zero values take
	// the paper's defaults (40 km bandwidth, α = 0.01).
	FootprintOptions = core.Options
	// Classification is an AS's inferred geographic scope.
	Classification = core.Classification
	// MatchResult scores discovered PoPs against a reference list.
	MatchResult = core.MatchResult

	// Dataset is the conditioned target dataset of eligible eyeball ASes.
	Dataset = pipeline.Dataset
	// ASRecord is one eligible eyeball AS with its usable samples.
	ASRecord = pipeline.ASRecord
	// PipelineConfig holds the §2/§3.1 conditioning thresholds.
	PipelineConfig = pipeline.Config
	// CrawlConfig controls the P2P crawl simulation.
	CrawlConfig = p2p.Config
	// Peer is one observed P2P user.
	Peer = p2p.Peer
	// PeerStream is a pull iterator over crawled peers (io.Reader-style
	// Next contract).
	PeerStream = p2p.PeerStream
	// PeerSource opens replayable peer streams — the ingestion shape the
	// streaming pipeline consumes without materializing a crawl.
	PeerSource = p2p.PeerSource

	// Registry collects the metrics, spans, and funnels of one run;
	// assign one to PipelineConfig.Obs / CrawlConfig.Obs /
	// FootprintOptions.Obs to enable instrumentation. A nil Registry is
	// the disabled state: outputs are bit-identical either way.
	Registry = obs.Registry
	// FunnelReport is the stage-by-stage in/out/drop accounting of a
	// pipeline build (Dataset.Funnel).
	FunnelReport = obs.Funnel

	// FaultPlan is a seed-deterministic fault-injection plan; assign one
	// to PipelineConfig.Faults / CrawlConfig.Faults to degrade the
	// measurement inputs reproducibly. A nil plan disables injection and
	// is bit-identical to running without one.
	FaultPlan = faults.Plan
	// BudgetError reports a pipeline build aborted because a stage's
	// error budget was exceeded (PipelineConfig.MaxGeoMissFrac /
	// MaxOriginMissFrac); detect it with errors.As.
	BudgetError = pipeline.BudgetError

	// Experiments bundles everything needed to regenerate the paper's
	// tables and figures; see the experiment runner functions below.
	Experiments = experiments.Env
)

// Geographic scope levels.
const (
	LevelCity      = astopo.LevelCity
	LevelState     = astopo.LevelState
	LevelCountry   = astopo.LevelCountry
	LevelContinent = astopo.LevelContinent
	LevelGlobal    = astopo.LevelGlobal
)

// Paper parameter defaults.
const (
	// DefaultBandwidthKm is the §3.1 city-level kernel bandwidth.
	DefaultBandwidthKm = 40.0
	// DefaultAlpha is the §4.1 peak-selection threshold.
	DefaultAlpha = 0.01
	// MatchRadiusKm is the §5 PoP matching radius.
	MatchRadiusKm = core.MatchRadiusKm
)

// GenerateWorld builds a full-scale synthetic Internet (~650 eyeball
// ASes) deterministically from the seed.
func GenerateWorld(seed uint64) (*World, error) {
	return astopo.Generate(astopo.DefaultConfig(seed))
}

// GenerateSmallWorld builds a test-scale world (~60 eyeball ASes).
func GenerateSmallWorld(seed uint64) (*World, error) {
	return astopo.Generate(astopo.SmallConfig(seed))
}

// GenerateWorldWithConfig builds a world from an explicit configuration.
func GenerateWorldWithConfig(cfg WorldConfig) (*World, error) {
	return astopo.Generate(cfg)
}

// BuildTargetDataset runs the paper's four-step methodology over the
// world with default parameters: simulate the three P2P crawls, geolocate
// every peer with two synthetic databases, group peers by AS via
// synthetic BGP tables, and condition with the §2/§3.1 filters.
func BuildTargetDataset(w *World, seed uint64) (*Dataset, error) {
	ds, _, err := pipeline.Run(context.Background(), w, p2p.DefaultConfig(), pipeline.DefaultConfig(), seed)
	return ds, err
}

// BuildTargetDatasetWithConfig is BuildTargetDataset with explicit crawl
// and conditioning parameters.
func BuildTargetDatasetWithConfig(w *World, crawlCfg CrawlConfig, cfg PipelineConfig, seed uint64) (*Dataset, error) {
	ds, _, err := pipeline.Run(context.Background(), w, crawlCfg, cfg, seed)
	return ds, err
}

// BuildTargetDatasetCtx is BuildTargetDatasetWithConfig with a
// cancellation context: crawl, geolocation workers, and conditioning all
// stop within one work unit of ctx being cancelled, returning ctx.Err().
func BuildTargetDatasetCtx(ctx context.Context, w *World, crawlCfg CrawlConfig, cfg PipelineConfig, seed uint64) (*Dataset, error) {
	ds, _, err := pipeline.Run(ctx, w, crawlCfg, cfg, seed)
	return ds, err
}

// BuildTargetDatasetStreamCtx is BuildTargetDatasetCtx on the streaming
// ingestion engine: the crawl is generated unit by unit and fed straight
// into the pipeline, so no peer slice is ever materialized and peak
// memory is bounded by the kept users (plus cfg.BatchSize transient
// state), not the crawl size. The dataset is bit-identical to
// BuildTargetDatasetCtx's for the same inputs.
func BuildTargetDatasetStreamCtx(ctx context.Context, w *World, crawlCfg CrawlConfig, cfg PipelineConfig, seed uint64) (*Dataset, error) {
	return pipeline.RunStream(ctx, w, crawlCfg, cfg, seed)
}

// CrawlPeerSource returns the replayable streaming source of the three
// simulated crawls — the same peer sequence BuildTargetDataset* consume
// for this (world, crawlCfg, seed) — for callers that want to pump peers
// through pipeline ingestion or export themselves.
func CrawlPeerSource(w *World, crawlCfg CrawlConfig, seed uint64) PeerSource {
	return pipeline.CrawlSource(w, crawlCfg, seed)
}

// WriteCrawlPeers streams the crawl for (w, crawlCfg, seed) into out in
// the textual peers-file format (header + "ip app asn lat lon" rows,
// bit-exact round trip) without materializing it, and returns the number
// of peers written. Read the file back with PeerFileSource.
func WriteCrawlPeers(ctx context.Context, out io.Writer, w *World, crawlCfg CrawlConfig, seed uint64) (int, error) {
	return p2p.WritePeers(ctx, out, CrawlPeerSource(w, crawlCfg, seed))
}

// PeerFileSource reads a peers file written by WriteCrawlPeers; feed it
// to BuildTargetDatasetFromSourceCtx to run the pipeline over
// pre-crawled data at bounded memory.
func PeerFileSource(path string) PeerSource { return p2p.FileSource(path) }

// BuildTargetDatasetFromSourceCtx runs pipeline steps 2–4 over an
// arbitrary replayable peer source against the world's databases and BGP
// tables — the fully streaming Build entry point.
func BuildTargetDatasetFromSourceCtx(ctx context.Context, w *World, src PeerSource, cfg PipelineConfig) (*Dataset, error) {
	return pipeline.BuildFromSource(ctx, w, src, cfg)
}

// EstimateFootprint runs the paper's §3–§4 procedure for one AS's
// samples against the world's geography.
func EstimateFootprint(w *World, samples []Sample, opts FootprintOptions) (*Footprint, error) {
	return core.EstimateFootprint(w.Gazetteer, samples, opts)
}

// EstimateFootprintCtx is EstimateFootprint with a cancellation
// context: the KDE convolution workers stop within one block of ctx
// being cancelled, returning ctx.Err().
func EstimateFootprintCtx(ctx context.Context, w *World, samples []Sample, opts FootprintOptions) (*Footprint, error) {
	return core.EstimateFootprintCtx(ctx, w.Gazetteer, samples, opts)
}

// ParseFaultSpec parses a comma-separated point=rate fault spec (e.g.
// "geo-miss=0.05,origin-miss=0.01") into a plan rooted at seed. An
// empty spec returns a nil plan: injection fully disabled.
func ParseFaultSpec(spec string, seed uint64) (*FaultPlan, error) {
	return faults.ParseSpec(spec, seed)
}

// ClassifyLevel applies the §2 classification rule (> 95% containment).
func ClassifyLevel(samples []Sample) Classification {
	return core.ClassifyLevel(samples)
}

// MatchPoPs validates discovered PoPs against reference locations at the
// given radius (§5).
func MatchPoPs(discovered []PoP, reference []GeoPoint, radiusKm float64) MatchResult {
	return core.MatchPoPs(discovered, reference, radiusKm)
}

// GeoPoint is a geographic coordinate (latitude/longitude in degrees).
type GeoPoint = geo.Point

// DefaultWorldConfig returns the full-scale generation configuration.
func DefaultWorldConfig(seed uint64) WorldConfig { return astopo.DefaultConfig(seed) }

// SmallWorldConfig returns the test-scale generation configuration.
func SmallWorldConfig(seed uint64) WorldConfig { return astopo.SmallConfig(seed) }

// DefaultCrawlConfig returns the Table 1-shaped crawl penetration model.
func DefaultCrawlConfig() CrawlConfig { return p2p.DefaultConfig() }

// NewRegistry returns an empty, enabled observability registry. It can
// snapshot to Prometheus text exposition (WritePrometheus), deterministic
// JSON (WriteJSON), or an HTTP handler (HTTPHandler) serving both plus
// net/http/pprof.
func NewRegistry() *Registry { return obs.New() }

// DefaultPipelineConfig returns the conditioning thresholds at synthetic
// scale.
func DefaultPipelineConfig() PipelineConfig { return pipeline.DefaultConfig() }

// Gazetteer returns the embedded world gazetteer shared by all worlds.
func Gazetteer() *gazetteer.Gazetteer { return gazetteer.Default() }

// SaveWorld serializes a world snapshot (JSON). A snapshot reloads
// bit-identically even across generator changes; see LoadWorld.
func SaveWorld(out io.Writer, world *World) error { return world.WriteSnapshot(out) }

// LoadWorld reconstructs a world from a snapshot written by SaveWorld.
func LoadWorld(in io.Reader) (*World, error) { return astopo.ReadSnapshot(in) }

// RIB is a routing table observed from one vantage AS, with full AS paths
// and longest-prefix-match IP→origin lookup — the synthetic RouteViews
// table dump.
type RIB = bgp.RIB

// OriginTable is the merged multi-vantage IP→origin-AS table (with its
// compiled flat LPM form) the pipeline resolves peers against.
type OriginTable = bgp.OriginTable

// DatasetSnapshot is a versioned binary serving artifact: a conditioned
// dataset plus the compiled origin table it was built with, in the
// deterministic "eyeballas-snap/1" format. Write one with
// WriteDatasetSnapshot and serve it with cmd/eyeballserve.
type DatasetSnapshot = snapshot.Snapshot

// SnapshotMeta is a snapshot artifact's provenance record (seed +
// label; deliberately no timestamps, so artifacts are byte-stable).
type SnapshotMeta = snapshot.Meta

// BuildTargetDatasetExportCtx is BuildTargetDatasetCtx plus the origin
// table the build resolved peers against — the inputs WriteDatasetSnapshot
// needs to produce a serving artifact carrying the exact LPM the dataset
// was conditioned with.
func BuildTargetDatasetExportCtx(ctx context.Context, w *World, crawlCfg CrawlConfig, cfg PipelineConfig, seed uint64) (*Dataset, *OriginTable, error) {
	ds, _, origins, err := pipeline.RunExport(ctx, w, crawlCfg, cfg, seed)
	return ds, origins, err
}

// BuildTargetDatasetStreamExportCtx is the streaming counterpart of
// BuildTargetDatasetExportCtx (bounded memory, bit-identical dataset).
func BuildTargetDatasetStreamExportCtx(ctx context.Context, w *World, crawlCfg CrawlConfig, cfg PipelineConfig, seed uint64) (*Dataset, *OriginTable, error) {
	return pipeline.RunStreamExport(ctx, w, crawlCfg, cfg, seed)
}

// WriteDatasetSnapshot serializes a snapshot artifact. The bytes are a
// pure function of the contents: the same dataset and origin table
// always produce the same artifact, and reading it back (see
// ReadDatasetSnapshot) reproduces both bit-identically.
func WriteDatasetSnapshot(out io.Writer, snap *DatasetSnapshot) error {
	return snapshot.Write(out, snap)
}

// ReadDatasetSnapshot parses an artifact written by WriteDatasetSnapshot,
// strictly: truncation, checksum damage, bad magic, and version skew are
// all rejected with typed errors (snapshot.ErrTruncated et al.).
func ReadDatasetSnapshot(in io.Reader) (*DatasetSnapshot, error) {
	return snapshot.Read(in)
}

// BuildRIB computes policy routing over the world and materializes the
// RIB seen from the vantage AS. For several RIBs over one world, compute
// the routing once via the lower-level bgp package; this helper recomputes
// it per call.
func BuildRIB(w *World, vantage ASN) (*RIB, error) {
	return bgp.BuildRIB(w, bgp.ComputeRouting(w), vantage)
}
